// gbx/dcsr.hpp — doubly-compressed sparse row (hypersparse) storage.
//
// DCSR stores only the non-empty rows: `rows[k]` is the k-th non-empty
// row id, entries of that row live in cols/vals[ptr[k] .. ptr[k+1]).
// Memory is O(nnz + #non-empty rows) regardless of the matrix dimension,
// which is what makes a 2^64 x 2^64 IPv6 traffic matrix practical. This
// is the same structural idea as SuiteSparse:GraphBLAS's hypersparse
// format (Davis, ACM TOMS 2019).
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "gbx/coo.hpp"
#include "gbx/error.hpp"
#include "gbx/types.hpp"

namespace gbx {

template <class T>
class Dcsr {
 public:
  using value_type = T;

  Dcsr() { ptr_.push_back(0); }

  /// Build from entries sorted by (row, col) with no duplicate keys.
  /// Precondition checked in debug paths via validate(). (The fused fold
  /// pipeline builds through gbx::build_from_run into recycled blocks
  /// instead; this remains the one-shot constructor and the legacy fold
  /// path's delta assembly.)
  static Dcsr from_sorted_unique(std::span<const Entry<T>> entries) {
    Dcsr d;
    d.ptr_.clear();
    // One pre-scan for the exact row count: all four arrays land at
    // final capacity in a single allocation each, no push_back regrowth.
    std::size_t nrows = 0;
    for (std::size_t i = 0; i < entries.size(); ++i)
      if (i == 0 || entries[i].row != entries[i - 1].row) ++nrows;
    d.rows_.reserve(nrows);
    d.ptr_.reserve(nrows + 1);
    d.cols_.reserve(entries.size());
    d.vals_.reserve(entries.size());
    for (const auto& e : entries) {
      if (d.rows_.empty() || d.rows_.back() != e.row) {
        d.rows_.push_back(e.row);
        d.ptr_.push_back(d.cols_.size());
      }
      d.cols_.push_back(e.col);
      d.vals_.push_back(e.val);
    }
    d.ptr_.push_back(d.cols_.size());  // ptr_ == {0} for empty input
    return d;
  }

  std::size_t nnz() const { return cols_.size(); }
  bool empty() const { return cols_.empty(); }
  /// Number of non-empty rows (the "hyper" dimension).
  std::size_t nrows_nonempty() const { return rows_.size(); }

  void clear() {
    rows_.clear();
    ptr_.assign(1, 0);
    cols_.clear();
    vals_.clear();
  }

  /// Release all heap memory.
  void reset() {
    std::vector<Index>().swap(rows_);
    std::vector<Offset> p(1, 0);
    ptr_.swap(p);
    std::vector<Index>().swap(cols_);
    std::vector<T>().swap(vals_);
  }

  /// Value lookup; nullopt when the coordinate holds no entry.
  std::optional<T> get(Index row, Index col) const {
    auto rit = std::lower_bound(rows_.begin(), rows_.end(), row);
    if (rit == rows_.end() || *rit != row) return std::nullopt;
    const std::size_t k = static_cast<std::size_t>(rit - rows_.begin());
    const auto lo = cols_.begin() + static_cast<std::ptrdiff_t>(ptr_[k]);
    const auto hi = cols_.begin() + static_cast<std::ptrdiff_t>(ptr_[k + 1]);
    auto cit = std::lower_bound(lo, hi, col);
    if (cit == hi || *cit != col) return std::nullopt;
    return vals_[static_cast<std::size_t>(cit - cols_.begin())];
  }

  /// Emit all entries, in (row, col) order, appended to `out`.
  void extract(Tuples<T>& out) const {
    out.reserve(out.size() + nnz());
    for (std::size_t k = 0; k < rows_.size(); ++k)
      for (Offset p = ptr_[k]; p < ptr_[k + 1]; ++p)
        out.push_back(rows_[k], cols_[p], vals_[p]);
  }

  /// Row-major traversal: f(row, col, value) for every entry.
  template <class F>
  void for_each(F&& f) const {
    for (std::size_t k = 0; k < rows_.size(); ++k)
      for (Offset p = ptr_[k]; p < ptr_[k + 1]; ++p)
        f(rows_[k], cols_[p], vals_[p]);
  }

  /// Structural invariant check (used heavily in tests):
  /// rows strictly increasing, ptr monotone, cols strictly increasing
  /// within each row, no empty stored row.
  bool validate() const {
    if (ptr_.size() != rows_.size() + 1) return false;
    if (ptr_.front() != 0 || ptr_.back() != cols_.size()) return false;
    if (cols_.size() != vals_.size()) return false;
    for (std::size_t k = 0; k + 1 < rows_.size(); ++k)
      if (rows_[k] >= rows_[k + 1]) return false;
    for (std::size_t k = 0; k < rows_.size(); ++k) {
      if (ptr_[k] >= ptr_[k + 1]) return false;  // empty rows are dropped
      for (Offset p = ptr_[k] + 1; p < ptr_[k + 1]; ++p)
        if (cols_[p - 1] >= cols_[p]) return false;
    }
    return true;
  }

  std::size_t memory_bytes() const {
    return rows_.capacity() * sizeof(Index) + ptr_.capacity() * sizeof(Offset) +
           cols_.capacity() * sizeof(Index) + vals_.capacity() * sizeof(T);
  }

  // Raw views for kernels (ewise, mxm, ...).
  std::span<const Index> rows() const { return rows_; }
  std::span<const Offset> ptr() const { return ptr_; }
  std::span<const Index> cols() const { return cols_; }
  std::span<const T> vals() const { return vals_; }

  /// Direct (mutating) access for kernel output assembly.
  std::vector<Index>& mutable_rows() { return rows_; }
  std::vector<Offset>& mutable_ptr() { return ptr_; }
  std::vector<Index>& mutable_cols() { return cols_; }
  std::vector<T>& mutable_vals() { return vals_; }

  friend bool operator==(const Dcsr& a, const Dcsr& b) {
    return a.rows_ == b.rows_ && a.ptr_ == b.ptr_ && a.cols_ == b.cols_ &&
           a.vals_ == b.vals_;
  }

 private:
  std::vector<Index> rows_;   // non-empty row ids, strictly increasing
  std::vector<Offset> ptr_;   // size rows_.size()+1, offsets into cols_/vals_
  std::vector<Index> cols_;   // column ids, strictly increasing per row
  std::vector<T> vals_;
};

}  // namespace gbx
