// gbx/matrix.hpp — the hypersparse matrix façade.
//
// Matrix pairs immutable DCSR storage with an unsorted *pending tuple*
// buffer, mirroring SuiteSparse:GraphBLAS's non-blocking mode: streaming
// updates append to the pending buffer in O(1) and are folded into the
// compressed structure only when a result is demanded (or the owner
// forces a fold). The hierarchical cascade of the paper stacks these
// matrices in levels; level 1's pending buffer is the "fast memory" of
// the paper's Fig. 1.
//
// The fold monoid is a class-level policy (default: plus). All pending
// folds combine duplicate coordinates with this monoid, so a Matrix is
// semantically "the monoid-sum of everything ever appended".
//
// Storage is held by shared pointer with copy-on-fold semantics: folds
// and clears *replace* the compressed block rather than mutating it
// whenever anyone else holds a reference (a published MatrixView, an
// aliased copy). Publishing an immutable view of the current value is
// therefore O(1) and the view stays valid — and untouched — while the
// matrix keeps streaming. In-place mutation happens only when this
// matrix holds the sole reference.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "gbx/coo.hpp"
#include "gbx/dcsr.hpp"
#include "gbx/error.hpp"
#include "gbx/ewise.hpp"
#include "gbx/monoid.hpp"
#include "gbx/types.hpp"
#include "gbx/view.hpp"

namespace gbx {

template <class T, class AddMonoid = PlusMonoid<T>>
class Matrix {
 public:
  using value_type = T;
  using add_monoid = AddMonoid;
  using add_op = typename AddMonoid::op_type;

  /// An empty nrows x ncols hypersparse matrix. Dimensions up to 2^64-1;
  /// no memory is allocated for the index space.
  Matrix(Index nrows, Index ncols) : nrows_(nrows), ncols_(ncols) {
    GBX_CHECK_VALUE(nrows > 0 && ncols > 0, "matrix dimensions must be > 0");
  }

  /// Convenience: square matrix.
  explicit Matrix(Index n) : Matrix(n, n) {}

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }

  /// Exact number of stored entries. Forces a pending fold (GraphBLAS
  /// GrB_Matrix_nvals semantics).
  std::size_t nvals() const {
    materialize();
    return stor_->nnz();
  }

  /// Cheap upper bound on nvals: compressed entries + buffered updates
  /// (duplicates still counted). This is what hierarchical cut checks
  /// compare against — it never forces a fold.
  std::size_t nvals_bound() const { return stor_->nnz() + pending_.size(); }

  /// Number of un-folded buffered updates.
  std::size_t pending_count() const { return pending_.size(); }

  bool empty() const { return stor_->empty() && pending_.empty(); }

  /// Remove all entries, keeping capacity when no view shares the block.
  void clear() {
    if (sole_owner()) stor_->clear();
    else stor_ = std::make_shared<Dcsr<T>>();
    pending_.clear();
  }

  /// Remove all entries and release memory (cascade level reset). Shared
  /// blocks are detached, not destroyed: live views keep their data.
  void reset() {
    if (sole_owner()) stor_->reset();
    else stor_ = std::make_shared<Dcsr<T>>();
    pending_.reset();
  }

  /// Single-element update: A(i,j) ⊕= v. O(1) append.
  void set_element(Index i, Index j, T v) {
    check_bounds(i, j);
    pending_.push_back(i, j, v);
  }

  /// Batched update from parallel arrays: A(i_k, j_k) ⊕= v_k.
  void append(std::span<const Index> rows, std::span<const Index> cols,
              std::span<const T> vals) {
    for (std::size_t k = 0; k < rows.size(); ++k) check_bounds(rows[k], cols[k]);
    pending_.append(rows, cols, vals);
  }

  /// Batched update from a tuple buffer.
  void append(const Tuples<T>& t) {
    for (const auto& e : t) check_bounds(e.row, e.col);
    pending_.append(t);
  }

  /// GrB_Matrix_build analogue: matrix must be empty; duplicates are
  /// combined with the fold monoid.
  void build(std::span<const Index> rows, std::span<const Index> cols,
             std::span<const T> vals) {
    GBX_CHECK(empty(), "build requires an empty matrix");
    append(rows, cols, vals);
    materialize();
  }

  /// Element read; folds pending first. nullopt if no entry stored.
  std::optional<T> extract_element(Index i, Index j) const {
    check_bounds(i, j);
    materialize();
    return stor_->get(i, j);
  }

  /// Emit all entries in (row, col) order (folds pending first).
  Tuples<T> extract_tuples() const {
    materialize();
    Tuples<T> out;
    stor_->extract(out);
    return out;
  }

  /// Fold the pending buffer into DCSR storage. Idempotent. Logically
  /// const: a fold never changes the matrix's mathematical value.
  /// Copy-on-fold: the merged result lands in a *new* block, so views
  /// published before the fold are never disturbed.
  void materialize() const {
    if (pending_.empty()) return;
    pending_.template sort_dedup<AddMonoid>();
    Dcsr<T> delta = Dcsr<T>::from_sorted_unique(pending_.entries());
    pending_.reset();
    if (stor_->empty()) {
      stor_ = std::make_shared<Dcsr<T>>(std::move(delta));
    } else {
      stor_ = std::make_shared<Dcsr<T>>(ewise_add<add_op>(*stor_, delta));
    }
  }

  /// A ⊕= other, over the fold monoid. The cascade's fold step. Folding
  /// into an empty matrix aliases the source block (O(1)) instead of
  /// copying it; copy-on-fold keeps the alias safe.
  void plus_assign(const Matrix& other) {
    GBX_CHECK_DIM(nrows_ == other.nrows_ && ncols_ == other.ncols_,
                  "plus_assign dimension mismatch");
    materialize();
    other.materialize();
    if (other.stor_->empty()) return;
    if (stor_->empty()) {
      stor_ = other.stor_;
    } else {
      stor_ = std::make_shared<Dcsr<T>>(ewise_add<add_op>(*stor_, *other.stor_));
    }
  }

  /// A ⊕= view: folds a frozen immutable block into this matrix (the
  /// snapshot materialization path — Σ Ai over published level views).
  /// Folding into an empty matrix aliases the view's block in O(1), like
  /// the Matrix overload. The const cast is sound: every published block
  /// originates as a non-const Dcsr inside a Matrix, and copy-on-fold
  /// means this matrix will only mutate it in place once it is again the
  /// block's sole owner.
  void plus_assign(const MatrixView<T>& other) {
    GBX_CHECK_DIM(nrows_ == other.nrows() && ncols_ == other.ncols(),
                  "plus_assign dimension mismatch");
    materialize();
    const Dcsr<T>& d = other.storage();
    if (d.empty()) return;
    if (stor_->empty()) {
      stor_ = std::const_pointer_cast<Dcsr<T>>(other.shared_storage());
    } else {
      stor_ = std::make_shared<Dcsr<T>>(ewise_add<add_op>(*stor_, d));
    }
  }

  /// Materialized DCSR view (folds pending first).
  const Dcsr<T>& storage() const {
    materialize();
    return *stor_;
  }

  /// Refcounted immutable handle on the materialized storage. The handle
  /// stays valid — and frozen at today's value — while this matrix keeps
  /// streaming (copy-on-fold). This is the epoch-snapshot publish step.
  std::shared_ptr<const Dcsr<T>> shared_storage() const {
    materialize();
    return stor_;
  }

  /// Immutable zero-copy view of the current value (folds pending first).
  MatrixView<T> view() const {
    return MatrixView<T>(nrows_, ncols_, shared_storage());
  }

  /// The current compressed block WITHOUT folding the pending buffer —
  /// a side-effect-free peek for identity tests and memory accounting
  /// (hier::snapshot_memory). Unlike shared_storage(), the returned
  /// block does not necessarily cover pending updates.
  std::shared_ptr<const Dcsr<T>> storage_handle() const { return stor_; }

  /// Adopt existing DCSR storage (kernel output assembly).
  static Matrix adopt(Index nrows, Index ncols, Dcsr<T> stor) {
    Matrix m(nrows, ncols);
    m.stor_ = std::make_shared<Dcsr<T>>(std::move(stor));
    return m;
  }

  /// Row-major traversal f(row, col, value) over the materialized matrix.
  template <class F>
  void for_each(F&& f) const {
    materialize();
    stor_->for_each(std::forward<F>(f));
  }

  /// Heap bytes currently held (compressed + pending).
  std::size_t memory_bytes() const {
    return stor_->memory_bytes() + pending_.memory_bytes();
  }

  /// Structural invariants of the compressed part.
  bool validate() const { return stor_->validate(); }

 private:
  void check_bounds(Index i, Index j) const {
    GBX_CHECK_INDEX(i < nrows_, "row index out of bounds");
    GBX_CHECK_INDEX(j < ncols_, "column index out of bounds");
  }

  /// True when no view/alias shares the block, i.e. in-place mutation is
  /// allowed. New references are only ever created from this matrix on
  /// the owning thread, so an observed count of 1 is stable — but the
  /// last external release may have happened on a reader thread, whose
  /// final loads must be ordered before our stores: hence the acquire
  /// fence pairing with the release-decrement inside shared_ptr (the
  /// classic COW publication edge; TSan models this as always
  /// synchronizing and cannot flag its absence).
  bool sole_owner() const {
    if (stor_.use_count() != 1) return false;
    std::atomic_thread_fence(std::memory_order_acquire);
    return true;
  }

  Index nrows_;
  Index ncols_;
  // Mutable: folding pending updates is value-preserving, so demand-driven
  // materialization from const accessors is logically const. A Matrix is
  // NOT safe for concurrent access from multiple threads (kernels use
  // OpenMP internally; instance-level parallelism uses one matrix per
  // thread, as the paper does with one matrix per process). Views handed
  // out by shared_storage()/view() ARE safe to read from other threads:
  // every mutation path re-points stor_ when the block is shared, and
  // mutates in place only when use_count()==1 — which, with views created
  // solely on the owner's thread, proves no concurrent reader exists.
  // Invariant: stor_ is never null.
  mutable std::shared_ptr<Dcsr<T>> stor_ = std::make_shared<Dcsr<T>>();
  mutable Tuples<T> pending_;
};

/// Value equality: same dimensions and same stored entries (both sides
/// fold pending buffers first).
template <class T, class M>
bool equal(const Matrix<T, M>& a, const Matrix<T, M>& b) {
  if (a.nrows() != b.nrows() || a.ncols() != b.ncols()) return false;
  return a.storage() == b.storage();
}

}  // namespace gbx
