// gbx/matrix.hpp — the hypersparse matrix façade.
//
// Matrix pairs immutable DCSR storage with an unsorted *pending tuple*
// buffer, mirroring SuiteSparse:GraphBLAS's non-blocking mode: streaming
// updates append to the pending buffer in O(1) and are folded into the
// compressed structure only when a result is demanded (or the owner
// forces a fold). The hierarchical cascade of the paper stacks these
// matrices in levels; level 1's pending buffer is the "fast memory" of
// the paper's Fig. 1.
//
// The fold monoid is a class-level policy (default: plus). All pending
// folds combine duplicate coordinates with this monoid, so a Matrix is
// semantically "the monoid-sum of everything ever appended".
//
// Storage is held by shared pointer with copy-on-fold semantics: folds
// and clears *replace* the compressed block rather than mutating it
// whenever anyone else holds a reference (a published MatrixView, an
// aliased copy). Publishing an immutable view of the current value is
// therefore O(1) and the view stays valid — and untouched — while the
// matrix keeps streaming. In-place mutation happens only when this
// matrix holds the sole reference.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "gbx/coo.hpp"
#include "gbx/dcsr.hpp"
#include "gbx/error.hpp"
#include "gbx/ewise.hpp"
#include "gbx/fold.hpp"
#include "gbx/monoid.hpp"
#include "gbx/scratch.hpp"
#include "gbx/types.hpp"
#include "gbx/view.hpp"

namespace gbx {

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GBX_HAS_FEATURE_TSAN 1
#endif
#endif
#ifndef GBX_HAS_FEATURE_TSAN
#define GBX_HAS_FEATURE_TSAN 0
#endif

template <class T, class AddMonoid = PlusMonoid<T>>
class Matrix {
 public:
  using value_type = T;
  using add_monoid = AddMonoid;
  using add_op = typename AddMonoid::op_type;

  /// An empty nrows x ncols hypersparse matrix. Dimensions up to 2^64-1;
  /// no memory is allocated for the index space.
  Matrix(Index nrows, Index ncols) : nrows_(nrows), ncols_(ncols) {
    GBX_CHECK_VALUE(nrows > 0 && ncols > 0, "matrix dimensions must be > 0");
  }

  /// Convenience: square matrix.
  explicit Matrix(Index n) : Matrix(n, n) {}

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }

  /// Exact number of stored entries. Forces a pending fold (GraphBLAS
  /// GrB_Matrix_nvals semantics).
  std::size_t nvals() const {
    materialize();
    return stor_->nnz();
  }

  /// Cheap upper bound on nvals: compressed entries + buffered updates
  /// (duplicates still counted). This is what hierarchical cut checks
  /// compare against — it never forces a fold.
  std::size_t nvals_bound() const { return stor_->nnz() + pending_.size(); }

  /// Number of un-folded buffered updates.
  std::size_t pending_count() const { return pending_.size(); }

  bool empty() const { return stor_->empty() && pending_.empty(); }

  /// Remove all entries, keeping capacity when no view shares the block.
  void clear() {
    if (sole_owner()) stor_->clear();
    else stor_ = std::make_shared<Dcsr<T>>();
    pending_.clear();
  }

  /// Remove all entries and release memory (cascade level reset). Shared
  /// blocks are detached, not destroyed: live views keep their data.
  /// The recycled spare block is released too — reset means the level
  /// really returns its heap, unlike clear()'s keep-warm semantics.
  void reset() {
    if (sole_owner()) stor_->reset();
    else stor_ = std::make_shared<Dcsr<T>>();
    pending_.reset();
    spare_.reset();
  }

  /// Single-element update: A(i,j) ⊕= v. O(1) append.
  void set_element(Index i, Index j, T v) {
    check_bounds(i, j);
    pending_.push_back(i, j, v);
  }

  /// Batched update from parallel arrays: A(i_k, j_k) ⊕= v_k.
  void append(std::span<const Index> rows, std::span<const Index> cols,
              std::span<const T> vals) {
    for (std::size_t k = 0; k < rows.size(); ++k) check_bounds(rows[k], cols[k]);
    pending_.append(rows, cols, vals);
  }

  /// Batched update from a tuple buffer.
  void append(const Tuples<T>& t) {
    for (const auto& e : t) check_bounds(e.row, e.col);
    pending_.append(t);
  }

  /// GrB_Matrix_build analogue: matrix must be empty; duplicates are
  /// combined with the fold monoid.
  void build(std::span<const Index> rows, std::span<const Index> cols,
             std::span<const T> vals) {
    GBX_CHECK(empty(), "build requires an empty matrix");
    append(rows, cols, vals);
    materialize();
  }

  /// Element read; folds pending first. nullopt if no entry stored.
  std::optional<T> extract_element(Index i, Index j) const {
    check_bounds(i, j);
    materialize();
    return stor_->get(i, j);
  }

  /// Emit all entries in (row, col) order (folds pending first).
  Tuples<T> extract_tuples() const {
    materialize();
    Tuples<T> out;
    stor_->extract(out);
    return out;
  }

  /// Fold the pending buffer into DCSR storage. Idempotent. Logically
  /// const: a fold never changes the matrix's mathematical value.
  /// Copy-on-fold: when anyone else holds the block (a published view),
  /// the merged result lands in a *new* block, so views published before
  /// the fold are never disturbed; a sole owner merges into the recycled
  /// spare block and swaps — zero heap traffic at steady state.
  void materialize() const {
    if (pending_.empty()) return;
    if (fold_pipeline() == FoldPipeline::kLegacy) {
      // The seed pipeline, kept bit-for-bit: comparison sort, dedup,
      // intermediate delta block, two-pass union into a fresh block.
      sort_entries_comparison(pending_.entries());
      dedup_sorted_entries_parallel<AddMonoid>(pending_.entries());
      Dcsr<T> delta = Dcsr<T>::from_sorted_unique(pending_.entries());
      pending_.reset();
      if (stor_->empty()) {
        stor_ = std::make_shared<Dcsr<T>>(std::move(delta));
      } else {
        stor_ = std::make_shared<Dcsr<T>>(ewise_add<add_op>(*stor_, delta));
      }
      return;
    }
    with_fold_run<AddMonoid>(pending_.entries(), ScratchPool::local(),
                             [&](const auto& run) { fold_run_in(run); });
    pending_.clear();  // capacity retained: the fast level stays warm
  }

  /// A ⊕= other, over the fold monoid. Folding into an empty matrix
  /// aliases the source block (O(1)) instead of copying it; copy-on-fold
  /// keeps the alias safe.
  void plus_assign(const Matrix& other) {
    GBX_CHECK_DIM(nrows_ == other.nrows_ && ncols_ == other.ncols_,
                  "plus_assign dimension mismatch");
    materialize();
    other.materialize();
    if (other.stor_->empty()) return;
    if (stor_->empty()) {
      stor_ = other.stor_;
    } else {
      merge_block_in(*other.stor_);
    }
  }

  /// A ⊕= view: folds a frozen immutable block into this matrix (the
  /// snapshot materialization path — Σ Ai over published level views).
  /// Folding into an empty matrix aliases the view's block in O(1), like
  /// the Matrix overload. The const cast is sound: every published block
  /// originates as a non-const Dcsr inside a Matrix, and copy-on-fold
  /// means this matrix will only mutate it in place once it is again the
  /// block's sole owner.
  void plus_assign(const MatrixView<T>& other) {
    GBX_CHECK_DIM(nrows_ == other.nrows() && ncols_ == other.ncols(),
                  "plus_assign dimension mismatch");
    materialize();
    const Dcsr<T>& d = other.storage();
    if (d.empty()) return;
    if (stor_->empty()) {
      stor_ = std::const_pointer_cast<Dcsr<T>>(other.shared_storage());
    } else {
      merge_block_in(d);
    }
  }

  /// The cascade's fold step, fused: A ⊕= src (compressed AND pending
  /// sides), then src is emptied with capacity retained. src's pending
  /// run is sorted, deduped, and merged straight into this matrix's
  /// block — no intermediate Dcsr is materialized in src, unlike
  /// plus_assign(src) which first folds src's pending into src's own
  /// storage. The hierarchical cascade calls this once per level fold,
  /// so at steady state (capacities plateaued, no snapshot pinning the
  /// blocks) it performs zero heap allocations.
  void fold_from(Matrix& src) {
    GBX_CHECK_DIM(nrows_ == src.nrows_ && ncols_ == src.ncols_,
                  "fold_from dimension mismatch");
    // Folding a matrix into itself would merge and then clear the same
    // storage — silent data loss. Self-application needs plus_assign.
    GBX_CHECK_VALUE(&src != this, "fold_from requires a distinct source");
    if (fold_pipeline() == FoldPipeline::kLegacy) {
      plus_assign(src);
      src.reset();
      return;
    }
    materialize();
    // Compressed side first (present when a query materialized src, or
    // for levels above the first, which accumulate folded blocks).
    if (!src.stor_->empty()) {
      if (stor_->empty()) {
        stor_ = src.stor_;  // alias; copy-on-fold keeps it safe
      } else {
        merge_block_in(*src.stor_);
      }
    }
    // Pending side: fused sort → dedup → merge, no intermediate block.
    if (!src.pending_.empty()) {
      with_fold_run<AddMonoid>(src.pending_.entries(), ScratchPool::local(),
                               [&](const auto& run) { fold_run_in(run); });
    }
    src.clear();
  }

  /// Materialized DCSR view (folds pending first).
  const Dcsr<T>& storage() const {
    materialize();
    return *stor_;
  }

  /// Refcounted immutable handle on the materialized storage. The handle
  /// stays valid — and frozen at today's value — while this matrix keeps
  /// streaming (copy-on-fold). This is the epoch-snapshot publish step.
  std::shared_ptr<const Dcsr<T>> shared_storage() const {
    materialize();
    return stor_;
  }

  /// Immutable zero-copy view of the current value (folds pending first).
  MatrixView<T> view() const {
    return MatrixView<T>(nrows_, ncols_, shared_storage());
  }

  /// The current compressed block WITHOUT folding the pending buffer —
  /// a side-effect-free peek for identity tests and memory accounting
  /// (hier::snapshot_memory). Unlike shared_storage(), the returned
  /// block does not necessarily cover pending updates.
  std::shared_ptr<const Dcsr<T>> storage_handle() const { return stor_; }

  /// Adopt existing DCSR storage (kernel output assembly).
  static Matrix adopt(Index nrows, Index ncols, Dcsr<T> stor) {
    Matrix m(nrows, ncols);
    m.stor_ = std::make_shared<Dcsr<T>>(std::move(stor));
    return m;
  }

  /// Row-major traversal f(row, col, value) over the materialized matrix.
  template <class F>
  void for_each(F&& f) const {
    materialize();
    stor_->for_each(std::forward<F>(f));
  }

  /// Heap bytes currently held (compressed + pending + recycled spare).
  std::size_t memory_bytes() const {
    return stor_->memory_bytes() + pending_.memory_bytes() +
           spare_.memory_bytes();
  }

  /// Structural invariants of the compressed part.
  bool validate() const { return stor_->validate(); }

 private:
  void check_bounds(Index i, Index j) const {
    GBX_CHECK_INDEX(i < nrows_, "row index out of bounds");
    GBX_CHECK_INDEX(j < ncols_, "column index out of bounds");
  }

  /// Merge a sorted unique run into the compressed block (fused path).
  template <class Run>
  void fold_run_in(const Run& run) const {
    if (run.size() == 0) return;
    if (stor_->empty()) {
      if (sole_owner()) {
        build_from_run(run, *stor_);
      } else {
        auto fresh = std::make_shared<Dcsr<T>>();
        build_from_run(run, *fresh);
        stor_ = std::move(fresh);
      }
      return;
    }
    merge_run_into<add_op>(*stor_, run, spare_);
    publish_spare();
  }

  /// Merge another compressed block into ours via the recycled spare.
  /// One streaming pass when the parallel fill cannot pay for its
  /// counting pass (serial engine or small blocks), parallel
  /// counts-then-fill otherwise. Precondition: neither block is empty,
  /// `other` is not `*stor_`.
  void merge_block_in(const Dcsr<T>& other) const {
    if (fold_pipeline() == FoldPipeline::kLegacy) {
      stor_ = std::make_shared<Dcsr<T>>(ewise_add<add_op>(*stor_, other));
      return;
    }
    if (max_threads() == 1 ||
        stor_->nnz() + other.nnz() < detail::kParallelMergeCutoff) {
      merge_blocks_into<add_op>(*stor_, other, spare_);
    } else {
      ewise_add_into<add_op>(*stor_, other, spare_, ScratchPool::local());
    }
    publish_spare();
  }

  /// Install the spare block as the new storage. Sole owner: swap the
  /// vectors, so the old block's capacity becomes the next fold's output
  /// buffer (this is what makes steady-state folds allocation-free).
  /// Shared (a view pins the old block): move the spare into a fresh
  /// refcounted block — copy-on-fold, the pinned views stay frozen.
  void publish_spare() const {
    if (sole_owner()) {
      std::swap(*stor_, spare_);
      spare_.clear();
    } else {
      stor_ = std::make_shared<Dcsr<T>>(std::move(spare_));
      spare_ = Dcsr<T>();
    }
  }

  /// True when no view/alias shares the block, i.e. in-place mutation is
  /// allowed. New references are only ever created from this matrix on
  /// the owning thread, so an observed count of 1 is stable — but the
  /// last external release may have happened on a reader thread, whose
  /// final loads must be ordered before our stores. The relaxed
  /// use_count() load observing the release-decrement, followed by the
  /// acquire fence, establishes exactly that ([atomics.fences]: a
  /// release operation synchronizes with an acquire fence sequenced
  /// after an atomic read of the released value) — the classic COW
  /// publication edge.
  ///
  /// TSan's fence modeling cannot pair the relaxed load with the
  /// decrement, so with the fused pipeline exercising in-place reuse on
  /// every fold it reports the (correct) edge as a race. Under TSan the
  /// reuse is disabled — every fold copies, like the pinned-block path —
  /// which keeps all modelable publication edges checked; allocation
  /// reuse itself is asserted by the plain-build zero-alloc test. Same
  /// spirit as the preset's OpenMP opt-out for uninstrumented libgomp.
  bool sole_owner() const {
#if defined(__SANITIZE_THREAD__) || GBX_HAS_FEATURE_TSAN
    return false;
#else
    if (stor_.use_count() != 1) return false;
    std::atomic_thread_fence(std::memory_order_acquire);
    return true;
#endif
  }

  Index nrows_;
  Index ncols_;
  // Mutable: folding pending updates is value-preserving, so demand-driven
  // materialization from const accessors is logically const. A Matrix is
  // NOT safe for concurrent access from multiple threads (kernels use
  // OpenMP internally; instance-level parallelism uses one matrix per
  // thread, as the paper does with one matrix per process). Views handed
  // out by shared_storage()/view() ARE safe to read from other threads:
  // every mutation path re-points stor_ when the block is shared, and
  // mutates in place only when use_count()==1 — which, with views created
  // solely on the owner's thread, proves no concurrent reader exists.
  // Invariant: stor_ is never null.
  mutable std::shared_ptr<Dcsr<T>> stor_ = std::make_shared<Dcsr<T>>();
  mutable Tuples<T> pending_;
  // Recycled fold output block: merges build here, then swap with the
  // current block (sole owner) so both capacity pools ping-pong across
  // folds. Logically empty between folds; holds capacity only.
  mutable Dcsr<T> spare_;
};

/// Value equality: same dimensions and same stored entries (both sides
/// fold pending buffers first).
template <class T, class M>
bool equal(const Matrix<T, M>& a, const Matrix<T, M>& b) {
  if (a.nrows() != b.nrows() || a.ncols() != b.ncols()) return false;
  return a.storage() == b.storage();
}

}  // namespace gbx
