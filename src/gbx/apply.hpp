// gbx/apply.hpp — unary transforms over stored values (GrB_apply).
//
// Structure is preserved exactly: apply never drops entries even when the
// op maps a value to zero (explicit zeros are legal entries in GraphBLAS;
// use select.hpp to prune).
#pragma once

#include "gbx/matrix.hpp"
#include "gbx/ops.hpp"
#include "gbx/tsan_omp.hpp"

namespace gbx {

/// C = op(A) for a stateless unary op type (apply<One<T>>, ...).
template <class UnaryOpT, class T, class M>
Matrix<T, M> apply(const Matrix<T, M>& A) {
  const Dcsr<T>& s = A.storage();
  Dcsr<T> c = s;
  auto& vals = c.mutable_vals();
  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(static)
    for (std::size_t p = 0; p < vals.size(); ++p) {
      vals[p] = UnaryOpT::apply(vals[p]);
    }
  }
  return Matrix<T, M>::adopt(A.nrows(), A.ncols(), std::move(c));
}

/// C = f(A) for a stateful functor with T operator-style `apply(T)`
/// (Bind1st/Bind2nd instances, lambdas wrapped in a struct, ...).
template <class T, class M, class F>
Matrix<T, M> apply_fn(const Matrix<T, M>& A, const F& f) {
  const Dcsr<T>& s = A.storage();
  Dcsr<T> c = s;
  auto& vals = c.mutable_vals();
  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(static)
    for (std::size_t p = 0; p < vals.size(); ++p) {
      vals[p] = f.apply(vals[p]);
    }
  }
  return Matrix<T, M>::adopt(A.nrows(), A.ncols(), std::move(c));
}

}  // namespace gbx
