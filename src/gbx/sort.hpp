// gbx/sort.hpp — sorting and duplicate-folding kernels for (row, col,
// value) entries.
//
// Sorting a batch of updates by (row, col) is the hot kernel behind every
// pending-tuple fold in the hierarchical cascade, so it gets two engines:
//
//   * LSD radix sort over a packed 64-bit key (the fast path). One scan
//     computes the bit widths of the row and column sets; whenever
//     bits(row) + bits(col) <= 64 the coordinate packs into a single
//     word, key = (row << col_bits) | col, whose integer order equals the
//     lexicographic (row, col) order. Keys and values are split into SoA
//     ping-pong buffers (ScratchPool-backed, so steady-state folds never
//     allocate) and sorted with 8-bit digits, least significant first;
//     constant digits are skipped, so a scale-17 Kronecker batch needs
//     ~4 passes instead of n log n comparisons. Per-thread histograms
//     parallelize the counting and scatter passes when OpenMP has
//     threads to offer. LSD radix is stable, which the fused
//     dedup-during-final-scatter in gbx/fold.hpp relies on.
//
//   * Comparison sample sort (the fallback). Entries whose coordinates
//     cannot pack into 64 bits (full IPv6-scale row AND column spaces in
//     one batch) take the original OpenMP sample sort: splitters from a
//     strided sample, per-thread scatter histograms, buckets sorted
//     independently. Robust to heavy row skew; not stable.
//
// `sort_entries` stays the single public API and picks the engine; small
// inputs use std::sort directly, where the scatter machinery cannot win.
#pragma once

#include <omp.h>

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "gbx/parallel.hpp"
#include "gbx/scratch.hpp"
#include "gbx/tsan_omp.hpp"
#include "gbx/types.hpp"

namespace gbx {

/// One stored update: matrix coordinate plus value. AoS layout keeps the
/// comparison sort cache-friendly; the radix path unzips to SoA.
template <class T>
struct Entry {
  Index row;
  Index col;
  T val;

  friend constexpr bool operator==(const Entry& a, const Entry& b) {
    return a.row == b.row && a.col == b.col && a.val == b.val;
  }
};

/// Lexicographic (row, col) ordering; values do not participate.
template <class T>
constexpr bool entry_less(const Entry<T>& a, const Entry<T>& b) {
  return a.row != b.row ? a.row < b.row : a.col < b.col;
}

template <class T>
constexpr bool entry_key_equal(const Entry<T>& a, const Entry<T>& b) {
  return a.row == b.row && a.col == b.col;
}

namespace detail {

/// Serial cutoff: below this, std::sort wins over parallel scatter
/// machinery (both sample sort and parallel radix passes).
inline constexpr std::size_t kParallelSortCutoff = 1u << 15;

/// Below this the constant costs of pack/unpack + histograms exceed the
/// comparison savings and sort_entries uses std::sort.
inline constexpr std::size_t kRadixSortCutoff = 1u << 11;

template <class T>
void sample_sort(std::vector<Entry<T>>& v) {
  const std::size_t n = v.size();
  const int threads = max_threads();
  const int kb = std::min<int>(std::max(2, threads * 4), 256);  // buckets

  // --- splitters from a strided sample -------------------------------
  const std::size_t sample_sz = static_cast<std::size_t>(kb) * 32;
  std::vector<Entry<T>> sample(sample_sz);
  for (std::size_t s = 0; s < sample_sz; ++s)
    sample[s] = v[(s * n) / sample_sz];
  std::sort(sample.begin(), sample.end(), entry_less<T>);
  std::vector<Entry<T>> split(static_cast<std::size_t>(kb) - 1);
  for (int b = 1; b < kb; ++b)
    split[static_cast<std::size_t>(b) - 1] =
        sample[(static_cast<std::size_t>(b) * sample_sz) / kb];

  auto bucket_of = [&](const Entry<T>& e) -> int {
    return static_cast<int>(
        std::upper_bound(split.begin(), split.end(), e, entry_less<T>) -
        split.begin());
  };

  // --- per-thread histograms ------------------------------------------
  const auto chunks = block_ranges(n, threads);
  const int nchunks = static_cast<int>(chunks.size()) - 1;
  // hist[c][b] = #entries of chunk c going to bucket b
  std::vector<std::vector<Offset>> hist(
      static_cast<std::size_t>(nchunks),
      std::vector<Offset>(static_cast<std::size_t>(kb), 0));

  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(static)
    for (int c = 0; c < nchunks; ++c) {
      auto& h = hist[static_cast<std::size_t>(c)];
      for (Offset i = chunks[static_cast<std::size_t>(c)];
           i < chunks[static_cast<std::size_t>(c) + 1]; ++i)
        ++h[static_cast<std::size_t>(bucket_of(v[i]))];
    }
  }

  // --- global offsets: bucket-major, then chunk within bucket ---------
  std::vector<Offset> bucket_start(static_cast<std::size_t>(kb) + 1, 0);
  for (int b = 0; b < kb; ++b)
    for (int c = 0; c < nchunks; ++c)
      bucket_start[static_cast<std::size_t>(b) + 1] +=
          hist[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)];
  for (int b = 0; b < kb; ++b)
    bucket_start[static_cast<std::size_t>(b) + 1] +=
        bucket_start[static_cast<std::size_t>(b)];

  // write cursor for (chunk, bucket)
  std::vector<std::vector<Offset>> cursor(hist);
  for (int b = 0; b < kb; ++b) {
    Offset acc = bucket_start[static_cast<std::size_t>(b)];
    for (int c = 0; c < nchunks; ++c) {
      Offset cnt = hist[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)];
      cursor[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)] = acc;
      acc += cnt;
    }
  }

  // --- scatter ---------------------------------------------------------
  std::vector<Entry<T>> tmp(n);
  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(static)
    for (int c = 0; c < nchunks; ++c) {
      auto& cur = cursor[static_cast<std::size_t>(c)];
      for (Offset i = chunks[static_cast<std::size_t>(c)];
           i < chunks[static_cast<std::size_t>(c) + 1]; ++i)
        tmp[cur[static_cast<std::size_t>(bucket_of(v[i]))]++] = v[i];
    }
  }

  // --- sort buckets independently --------------------------------------
  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(dynamic, 1)
    for (int b = 0; b < kb; ++b) {
      std::sort(tmp.begin() + static_cast<std::ptrdiff_t>(
                                  bucket_start[static_cast<std::size_t>(b)]),
                tmp.begin() + static_cast<std::ptrdiff_t>(
                                  bucket_start[static_cast<std::size_t>(b) + 1]),
                entry_less<T>);
    }
  }

  v.swap(tmp);
}

// ---------------------------------------------------------------------
// Packed-key radix machinery (shared with the fused fold in gbx/fold.hpp)
// ---------------------------------------------------------------------

/// How a batch's (row, col) coordinates pack into one 64-bit key:
/// key = (row << col_bits) | col. `packable` is false when the combined
/// significant bits exceed 64 (e.g. full IPv6 row and column spaces in
/// the same batch) — those batches take the comparison path.
struct RadixLayout {
  int col_bits = 0;
  int total_bits = 0;
  std::uint64_t col_mask = 0;
  bool packable = false;
};

template <class T>
RadixLayout radix_layout(const Entry<T>* e, std::size_t n) {
  Index row_or = 0, col_or = 0;
  for (std::size_t i = 0; i < n; ++i) {
    row_or |= e[i].row;
    col_or |= e[i].col;
  }
  RadixLayout l;
  const int row_bits = std::bit_width(row_or);
  l.col_bits = std::bit_width(col_or);
  l.total_bits = row_bits + l.col_bits;
  // col_bits == 64 would make the pack/decode shifts UB (shift by the
  // full word width); it only packs when every row is 0 — not worth a
  // special key form, the comparison fallback handles it.
  l.packable = l.total_bits <= 64 && l.col_bits < 64;
  l.col_mask = l.col_bits == 0
                   ? 0
                   : (~std::uint64_t{0} >> (64 - l.col_bits));
  return l;
}

/// Widest digit the radix kernels use: 12 bits = 4096-bucket histograms
/// (32 KB of Offset counters — L1/L2 resident). Wider digits mean fewer
/// passes; the width is chosen per sort so the pass count is minimal
/// and the bits are spread evenly across the passes.
inline constexpr int kRadixMaxDigitBits = 12;
inline constexpr int kRadixMaxBuckets = 1 << kRadixMaxDigitBits;

/// Evenly-spread digit width for a key of `total_bits` significant bits
/// (e.g. 34 bits -> 3 passes of 12/11/11 bits instead of 5 byte passes).
inline int radix_digit_bits(int total_bits) {
  const int npasses =
      (total_bits + kRadixMaxDigitBits - 1) / kRadixMaxDigitBits;
  return (total_bits + npasses - 1) / npasses;
}

/// All per-pass digit histograms of `k` in one read: hist[p * buckets +
/// d] counts keys whose p-th digit is d. Shared by the sort-only and
/// fused-dedup serial drivers.
inline void radix_histograms(const std::uint64_t* k, std::size_t n,
                             int npasses, int digit_bits, int buckets,
                             std::uint64_t mask, Offset* hist) {
  std::fill(hist, hist + static_cast<std::size_t>(npasses) *
                             static_cast<std::size_t>(buckets),
            Offset{0});
  for (std::size_t i = 0; i < n; ++i)
    for (int p = 0; p < npasses; ++p)
      ++hist[static_cast<std::size_t>(p) * buckets +
             ((k[i] >> (p * digit_bits)) & mask)];
}

/// True when one bucket holds every key (the pass would be a no-op).
inline bool radix_digit_constant(const Offset* h, int buckets,
                                 std::size_t n) {
  for (int d = 0; d < buckets; ++d)
    if (h[d] == n) return true;
  return false;
}

/// One serial counting-scatter pass over (key, value) pairs: stable,
/// bucket cursors from the digit histogram `h`.
template <class T>
void radix_scatter_pass(const std::uint64_t* ka, const T* va,
                        std::uint64_t* kb, T* vb, std::size_t n, int shift,
                        std::uint64_t mask, const Offset* h, int buckets) {
  Offset cur[kRadixMaxBuckets];
  Offset acc = 0;
  for (int d = 0; d < buckets; ++d) {
    cur[d] = acc;
    acc += h[d];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto d = (ka[i] >> shift) & mask;
    const Offset w = cur[d]++;
    kb[w] = ka[i];
    vb[w] = va[i];
  }
}

/// Stable LSD radix sort of n (key, value) pairs by key. (k0, v0) hold
/// the input; (k1, v1) are equal-sized scratch. Digits that are
/// constant across every key are skipped (a scale-17 stream has ~30
/// constant bits). Counting and scatter go parallel with per-thread
/// chunk histograms when OpenMP offers threads and n is large. Returns
/// true when the sorted sequence ended in (k1, v1).
template <class T>
bool radix_sort_pairs(std::uint64_t* k0, T* v0, std::uint64_t* k1, T* v1,
                      std::size_t n, int total_bits, ScratchPool& pool) {
  if (n < 2 || total_bits == 0) return false;
  const int digit_bits = radix_digit_bits(total_bits);
  const int buckets = 1 << digit_bits;
  const std::uint64_t mask = static_cast<std::uint64_t>(buckets - 1);
  const int npasses = (total_bits + digit_bits - 1) / digit_bits;
  const int threads = max_threads();

  std::uint64_t* ka = k0;
  T* va = v0;
  std::uint64_t* kb = k1;
  T* vb = v1;
  bool flip = false;

  if (threads == 1 || n < kParallelSortCutoff) {
    auto hist = pool.acquire<Offset>(static_cast<std::size_t>(npasses) *
                                     static_cast<std::size_t>(buckets));
    radix_histograms(k0, n, npasses, digit_bits, buckets, mask, hist.data());
    for (int p = 0; p < npasses; ++p) {
      const Offset* h = hist.data() + static_cast<std::size_t>(p) * buckets;
      if (radix_digit_constant(h, buckets, n)) continue;
      radix_scatter_pass(ka, va, kb, vb, n, p * digit_bits, mask, h, buckets);
      std::swap(ka, kb);
      std::swap(va, vb);
      flip = !flip;
    }
    return flip;
  }

  // Parallel: per pass, a per-chunk counting read of the pass's actual
  // input (chunk contents change after every scatter, so counts cannot
  // be precomputed), then bucket-major / chunk-major cursors (stable,
  // like the sample sort's scatter) and a parallel scatter.
  const auto chunks = block_ranges(n, threads);
  const int nchunks = static_cast<int>(chunks.size()) - 1;
  auto hist = pool.acquire<Offset>(static_cast<std::size_t>(nchunks) *
                                   static_cast<std::size_t>(buckets));
  auto cursor = pool.acquire<Offset>(static_cast<std::size_t>(nchunks) *
                                     static_cast<std::size_t>(buckets));
  auto h_at = [&](int c) {
    return hist.data() +
           static_cast<std::size_t>(c) * static_cast<std::size_t>(buckets);
  };

  for (int p = 0; p < npasses; ++p) {
    const int shift = p * digit_bits;
    std::fill(hist.begin(), hist.end(), Offset{0});
    GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
    {
      gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(static)
      for (int c = 0; c < nchunks; ++c) {
        Offset* h = h_at(c);
        for (Offset i = chunks[static_cast<std::size_t>(c)];
             i < chunks[static_cast<std::size_t>(c) + 1]; ++i)
          ++h[(ka[i] >> shift) & mask];
      }
    }

    // Cursors (and constant-digit detection) in one bucket-major walk.
    Offset acc = 0;
    bool constant = false;
    for (int d = 0; d < buckets; ++d) {
      Offset digit_total = 0;
      for (int c = 0; c < nchunks; ++c) {
        const Offset cnt = h_at(c)[d];
        cursor[static_cast<std::size_t>(c) * static_cast<std::size_t>(buckets) +
               static_cast<std::size_t>(d)] = acc;
        acc += cnt;
        digit_total += cnt;
      }
      if (digit_total == n) constant = true;
    }
    if (constant) continue;

    GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
    {
      gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(static)
      for (int c = 0; c < nchunks; ++c) {
        Offset* cur = cursor.data() + static_cast<std::size_t>(c) *
                                          static_cast<std::size_t>(buckets);
        for (Offset i = chunks[static_cast<std::size_t>(c)];
             i < chunks[static_cast<std::size_t>(c) + 1]; ++i) {
          const auto d = (ka[i] >> shift) & mask;
          const Offset w = cur[d]++;
          kb[w] = ka[i];
          vb[w] = va[i];
        }
      }
    }
    std::swap(ka, kb);
    std::swap(va, vb);
    flip = !flip;
  }
  return flip;
}

/// Split entries into packed-key / value SoA arrays (the ONE definition
/// of the key encoding; decode lives in the packed-run accessors).
/// Caller guarantees layout.packable.
template <class T>
void pack_keys(const Entry<T>* e, std::size_t n, const RadixLayout& layout,
               std::uint64_t* keys, T* vals) {
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = (static_cast<std::uint64_t>(e[i].row) << layout.col_bits) |
              static_cast<std::uint64_t>(e[i].col);
    vals[i] = e[i].val;
  }
}

/// Radix-sort an entry vector through the packed-key SoA path and write
/// the sorted sequence back in place. Caller guarantees layout.packable.
template <class T>
void radix_sort_entries(std::vector<Entry<T>>& v, const RadixLayout& layout,
                        ScratchPool& pool) {
  const std::size_t n = v.size();
  auto k0 = pool.acquire<std::uint64_t>(n);
  auto k1 = pool.acquire<std::uint64_t>(n);
  auto v0 = pool.acquire<T>(n);
  auto v1 = pool.acquire<T>(n);
  pack_keys(v.data(), n, layout, k0.data(), v0.data());
  const bool flip =
      radix_sort_pairs(k0.data(), v0.data(), k1.data(), v1.data(), n,
                       layout.total_bits, pool);
  const std::uint64_t* k = flip ? k1.data() : k0.data();
  const T* val = flip ? v1.data() : v0.data();
  for (std::size_t i = 0; i < n; ++i)
    v[i] = Entry<T>{static_cast<Index>(k[i] >> layout.col_bits),
                    static_cast<Index>(k[i] & layout.col_mask), val[i]};
}

/// Fold adjacent equal keys of a *sorted* (key, value) SoA run in place.
template <class MonoidT, class T>
std::size_t dedup_pairs(std::uint64_t* k, T* v, std::size_t n) {
  if (n == 0) return 0;
  std::size_t w = 0;
  for (std::size_t r = 1; r < n; ++r) {
    if (k[r] == k[w]) {
      v[w] = MonoidT::apply(v[w], v[r]);
    } else {
      ++w;
      k[w] = k[r];
      v[w] = v[r];
    }
  }
  return w + 1;
}

}  // namespace detail

/// The pre-radix comparison engine (std::sort / OpenMP sample sort).
/// Kept callable on its own so benches and differential tests can pit
/// the pipelines against each other; `sort_entries` is the real API.
template <class T>
void sort_entries_comparison(std::vector<Entry<T>>& v) {
  if (v.size() < detail::kParallelSortCutoff || max_threads() == 1) {
    std::sort(v.begin(), v.end(), entry_less<T>);
  } else {
    detail::sample_sort(v);
  }
}

/// Sort entries by (row, col). Packed-key LSD radix (stable) for batches
/// whose coordinates fit 64 combined bits, std::sort below the cutoff,
/// comparison sample sort for unpackable giants. Callers that fold
/// duplicates must use a commutative monoid: the comparison fallback is
/// not stable, so only commutative folds are order-insensitive across
/// engines.
///
/// Scratch is a LOCAL pool, freed on return: callers of the public API
/// are one-shot nnz-scale sorts (transpose, kron, structure), and
/// caching ~32 bytes/entry per thread forever would dwarf the sort
/// itself. The fold pipeline, which genuinely re-sorts every batch,
/// goes through gbx::with_fold_run with the thread-local pool instead.
template <class T>
void sort_entries(std::vector<Entry<T>>& v) {
  if (v.size() < detail::kRadixSortCutoff) {
    std::sort(v.begin(), v.end(), entry_less<T>);
    return;
  }
  const auto layout = detail::radix_layout(v.data(), v.size());
  if (layout.packable) {
    ScratchPool pool;
    detail::radix_sort_entries(v, layout, pool);
  } else {
    sort_entries_comparison(v);
  }
}

/// Combine adjacent duplicate (row, col) keys of a *sorted* entry vector
/// with the monoid, compacting in place. Returns the number of surviving
/// entries. O(n) single pass; parallel variant below kicks in for large n.
template <class MonoidT, class T>
std::size_t dedup_sorted_entries(std::vector<Entry<T>>& v) {
  if (v.empty()) return 0;
  std::size_t w = 0;
  for (std::size_t r = 1; r < v.size(); ++r) {
    if (entry_key_equal(v[r], v[w])) {
      v[w].val = MonoidT::apply(v[w].val, v[r].val);
    } else {
      ++w;
      v[w] = v[r];
    }
  }
  v.resize(w + 1);
  return v.size();
}

/// Parallel dedup: chunk boundaries are advanced past runs of equal keys
/// so no run straddles two chunks, each chunk compacts independently, and
/// the compacted spans are concatenated. The concatenation is a
/// prefix-sum scatter into a recycled thread-local buffer running one
/// parallel pass (chunk destinations are disjoint by construction), so
/// huge mostly-duplicate results no longer pay a serial memmove.
template <class MonoidT, class T>
std::size_t dedup_sorted_entries_parallel(std::vector<Entry<T>>& v) {
  const std::size_t n = v.size();
  if (n < detail::kParallelSortCutoff || max_threads() == 1)
    return dedup_sorted_entries<MonoidT>(v);

  const int threads = max_threads();
  auto bounds = block_ranges(n, threads);
  // Align boundaries to run starts. A run longer than a whole chunk
  // pushes that chunk's boundary up to (or past) the next original
  // boundary; boundaries stay monotone because equal keys all advance to
  // the same run end.
  for (std::size_t b = 1; b + 1 <= bounds.size() - 1; ++b) {
    Offset& x = bounds[b];
    while (x < n && x > 0 && entry_key_equal(v[x], v[x - 1])) ++x;
  }
  const int nchunks = static_cast<int>(bounds.size()) - 1;
  std::vector<std::size_t> out_count(static_cast<std::size_t>(nchunks), 0);

  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(static)
    for (int c = 0; c < nchunks; ++c) {
      const Offset lo = bounds[static_cast<std::size_t>(c)];
      const Offset hi = bounds[static_cast<std::size_t>(c) + 1];
      if (lo >= hi) continue;
      Offset w = lo;
      for (Offset r = lo + 1; r < hi; ++r) {
        if (entry_key_equal(v[r], v[w])) {
          v[w].val = MonoidT::apply(v[w].val, v[r].val);
        } else {
          ++w;
          v[w] = v[r];
        }
      }
      out_count[static_cast<std::size_t>(c)] = w + 1 - lo;
    }
  }

  // Exclusive prefix sum of chunk output sizes -> scatter destinations.
  std::vector<std::size_t> dst(static_cast<std::size_t>(nchunks));
  std::size_t total = 0;
  for (int c = 0; c < nchunks; ++c) {
    dst[static_cast<std::size_t>(c)] = total;
    total += out_count[static_cast<std::size_t>(c)];
  }
  if (total == n) return n;  // nothing folded anywhere: already compact

  // Parallel scatter through a pool-leased staging buffer, then a
  // parallel copy back into the vector's prefix. (In-place leftward
  // memmoves cannot run in parallel: chunk c's destination overlaps
  // chunk c-1's source.) The lease comes from the calling thread's
  // ScratchPool, so repeated callers recycle it and the bytes stay
  // visible to the pool's accounting/release hooks.
  auto staged = ScratchPool::local().acquire<Entry<T>>(total);
  Entry<T>* const out = staged.data();
  const Entry<T>* const in = v.data();
  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(static)
    for (int c = 0; c < nchunks; ++c) {
      const Offset lo = bounds[static_cast<std::size_t>(c)];
      const std::size_t cnt = out_count[static_cast<std::size_t>(c)];
      if (cnt > 0)
        std::copy(in + lo, in + lo + cnt,
                  out + dst[static_cast<std::size_t>(c)]);
    }
  }  // staging scatter joins before the copy-back region reads `out`
  Entry<T>* const back = v.data();
  const auto cb = block_ranges(total, threads);
  const int ncb = static_cast<int>(cb.size()) - 1;
  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(static)
    for (int c = 0; c < ncb; ++c) {
      std::copy(out + cb[static_cast<std::size_t>(c)],
                out + cb[static_cast<std::size_t>(c) + 1],
                back + cb[static_cast<std::size_t>(c)]);
    }
  }
  v.resize(total);
  return total;
}

}  // namespace gbx
