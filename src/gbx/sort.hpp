// gbx/sort.hpp — parallel sample sort for (row, col, value) entries.
//
// Sorting a batch of updates by (row, col) is the hot kernel behind every
// pending-tuple fold in the hierarchical cascade. We use an OpenMP sample
// sort: pick splitters from a strided sample, scatter entries into
// buckets with per-thread histograms, then sort buckets independently.
// Sample sort is robust to the heavy row skew of power-law graph streams
// (equal keys may straddle a splitter; the concatenation of sorted
// buckets is still globally sorted, which is all dedup needs).
#pragma once

#include <omp.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "gbx/parallel.hpp"
#include "gbx/types.hpp"

namespace gbx {

/// One stored update: matrix coordinate plus value. AoS layout keeps the
/// sort cache-friendly.
template <class T>
struct Entry {
  Index row;
  Index col;
  T val;

  friend constexpr bool operator==(const Entry& a, const Entry& b) {
    return a.row == b.row && a.col == b.col && a.val == b.val;
  }
};

/// Lexicographic (row, col) ordering; values do not participate.
template <class T>
constexpr bool entry_less(const Entry<T>& a, const Entry<T>& b) {
  return a.row != b.row ? a.row < b.row : a.col < b.col;
}

template <class T>
constexpr bool entry_key_equal(const Entry<T>& a, const Entry<T>& b) {
  return a.row == b.row && a.col == b.col;
}

namespace detail {

/// Serial cutoff: below this, std::sort wins over the scatter machinery.
inline constexpr std::size_t kParallelSortCutoff = 1u << 15;

template <class T>
void sample_sort(std::vector<Entry<T>>& v) {
  const std::size_t n = v.size();
  const int threads = max_threads();
  const int kb = std::min<int>(std::max(2, threads * 4), 256);  // buckets

  // --- splitters from a strided sample -------------------------------
  const std::size_t sample_sz = static_cast<std::size_t>(kb) * 32;
  std::vector<Entry<T>> sample(sample_sz);
  for (std::size_t s = 0; s < sample_sz; ++s)
    sample[s] = v[(s * n) / sample_sz];
  std::sort(sample.begin(), sample.end(), entry_less<T>);
  std::vector<Entry<T>> split(static_cast<std::size_t>(kb) - 1);
  for (int b = 1; b < kb; ++b)
    split[static_cast<std::size_t>(b) - 1] =
        sample[(static_cast<std::size_t>(b) * sample_sz) / kb];

  auto bucket_of = [&](const Entry<T>& e) -> int {
    return static_cast<int>(
        std::upper_bound(split.begin(), split.end(), e, entry_less<T>) -
        split.begin());
  };

  // --- per-thread histograms ------------------------------------------
  const auto chunks = block_ranges(n, threads);
  const int nchunks = static_cast<int>(chunks.size()) - 1;
  // hist[c][b] = #entries of chunk c going to bucket b
  std::vector<std::vector<Offset>> hist(
      static_cast<std::size_t>(nchunks),
      std::vector<Offset>(static_cast<std::size_t>(kb), 0));

#pragma omp parallel for schedule(static)
  for (int c = 0; c < nchunks; ++c) {
    auto& h = hist[static_cast<std::size_t>(c)];
    for (Offset i = chunks[static_cast<std::size_t>(c)];
         i < chunks[static_cast<std::size_t>(c) + 1]; ++i)
      ++h[static_cast<std::size_t>(bucket_of(v[i]))];
  }

  // --- global offsets: bucket-major, then chunk within bucket ---------
  std::vector<Offset> bucket_start(static_cast<std::size_t>(kb) + 1, 0);
  for (int b = 0; b < kb; ++b)
    for (int c = 0; c < nchunks; ++c)
      bucket_start[static_cast<std::size_t>(b) + 1] +=
          hist[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)];
  for (int b = 0; b < kb; ++b)
    bucket_start[static_cast<std::size_t>(b) + 1] +=
        bucket_start[static_cast<std::size_t>(b)];

  // write cursor for (chunk, bucket)
  std::vector<std::vector<Offset>> cursor(hist);
  for (int b = 0; b < kb; ++b) {
    Offset acc = bucket_start[static_cast<std::size_t>(b)];
    for (int c = 0; c < nchunks; ++c) {
      Offset cnt = hist[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)];
      cursor[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)] = acc;
      acc += cnt;
    }
  }

  // --- scatter ---------------------------------------------------------
  std::vector<Entry<T>> tmp(n);
#pragma omp parallel for schedule(static)
  for (int c = 0; c < nchunks; ++c) {
    auto& cur = cursor[static_cast<std::size_t>(c)];
    for (Offset i = chunks[static_cast<std::size_t>(c)];
         i < chunks[static_cast<std::size_t>(c) + 1]; ++i)
      tmp[cur[static_cast<std::size_t>(bucket_of(v[i]))]++] = v[i];
  }

  // --- sort buckets independently --------------------------------------
#pragma omp parallel for schedule(dynamic, 1)
  for (int b = 0; b < kb; ++b)
    std::sort(tmp.begin() + static_cast<std::ptrdiff_t>(
                                bucket_start[static_cast<std::size_t>(b)]),
              tmp.begin() + static_cast<std::ptrdiff_t>(
                                bucket_start[static_cast<std::size_t>(b) + 1]),
              entry_less<T>);

  v.swap(tmp);
}

}  // namespace detail

/// Sort entries by (row, col), parallel for large inputs. Not stable —
/// callers that fold duplicates must use a commutative monoid (stability
/// would only matter for non-commutative combination, which gbx's
/// pending-tuple path intentionally does not support).
template <class T>
void sort_entries(std::vector<Entry<T>>& v) {
  if (v.size() < detail::kParallelSortCutoff || max_threads() == 1) {
    std::sort(v.begin(), v.end(), entry_less<T>);
  } else {
    detail::sample_sort(v);
  }
}

/// Combine adjacent duplicate (row, col) keys of a *sorted* entry vector
/// with the monoid, compacting in place. Returns the number of surviving
/// entries. O(n) single pass; parallel variant below kicks in for large n.
template <class MonoidT, class T>
std::size_t dedup_sorted_entries(std::vector<Entry<T>>& v) {
  if (v.empty()) return 0;
  std::size_t w = 0;
  for (std::size_t r = 1; r < v.size(); ++r) {
    if (entry_key_equal(v[r], v[w])) {
      v[w].val = MonoidT::apply(v[w].val, v[r].val);
    } else {
      ++w;
      v[w] = v[r];
    }
  }
  v.resize(w + 1);
  return v.size();
}

/// Parallel dedup: chunk boundaries are advanced past runs of equal keys
/// so no run straddles two chunks, each chunk compacts independently, and
/// the compacted spans are concatenated.
template <class MonoidT, class T>
std::size_t dedup_sorted_entries_parallel(std::vector<Entry<T>>& v) {
  const std::size_t n = v.size();
  if (n < detail::kParallelSortCutoff || max_threads() == 1)
    return dedup_sorted_entries<MonoidT>(v);

  const int threads = max_threads();
  auto bounds = block_ranges(n, threads);
  // Align boundaries to run starts.
  for (std::size_t b = 1; b + 1 <= bounds.size() - 1; ++b) {
    Offset& x = bounds[b];
    while (x < n && x > 0 && entry_key_equal(v[x], v[x - 1])) ++x;
  }
  const int nchunks = static_cast<int>(bounds.size()) - 1;
  std::vector<std::size_t> out_count(static_cast<std::size_t>(nchunks), 0);

#pragma omp parallel for schedule(static)
  for (int c = 0; c < nchunks; ++c) {
    const Offset lo = bounds[static_cast<std::size_t>(c)];
    const Offset hi = bounds[static_cast<std::size_t>(c) + 1];
    if (lo >= hi) continue;
    Offset w = lo;
    for (Offset r = lo + 1; r < hi; ++r) {
      if (entry_key_equal(v[r], v[w])) {
        v[w].val = MonoidT::apply(v[w].val, v[r].val);
      } else {
        ++w;
        v[w] = v[r];
      }
    }
    out_count[static_cast<std::size_t>(c)] = w + 1 - lo;
  }

  // Compact chunks leftward (serial memmove pass; already O(result)).
  std::size_t w = 0;
  for (int c = 0; c < nchunks; ++c) {
    const Offset lo = bounds[static_cast<std::size_t>(c)];
    const std::size_t cnt = out_count[static_cast<std::size_t>(c)];
    if (w != lo && cnt > 0)
      std::move(v.begin() + static_cast<std::ptrdiff_t>(lo),
                v.begin() + static_cast<std::ptrdiff_t>(lo + cnt),
                v.begin() + static_cast<std::ptrdiff_t>(w));
    w += cnt;
  }
  v.resize(w);
  return w;
}

}  // namespace gbx
