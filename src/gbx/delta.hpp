// gbx/delta.hpp — structural/value deltas between immutable blocks.
//
// The snapshot engine (hier/snapshot.hpp) publishes one immutable DCSR
// block per level; successive snapshots of the same source share every
// block the writer has not folded past, by shared_ptr identity. That
// identity is what makes incremental analytics possible: a level whose
// block pointer is unchanged contributes *nothing* to the difference
// between two snapshots, so the diff work is proportional to the blocks
// that actually moved, not to nnz.
//
// This header supplies the two primitives the hier-level diff is built
// from:
//   * same_block(a, b)    — O(1) block-identity test on views.
//   * delta(A, B)         — rowwise merge extracting the entries of B
//                           not in A (added), of A not in B (removed),
//                           and the coordinates stored in both with
//                           unequal values (changed, old & new value).
//
// delta() is symmetric in structure with ewise_add: a two-pointer union
// merge over the non-empty row lists, O(nnz(A) + nnz(B)), with a pass-1
// count / pass-2 fill shape kept simple (single allocation per stream,
// no locks).
#pragma once

#include <cstddef>
#include <vector>

#include "gbx/coo.hpp"
#include "gbx/dcsr.hpp"
#include "gbx/ewise.hpp"
#include "gbx/types.hpp"
#include "gbx/view.hpp"

namespace gbx {

/// A coordinate whose stored value changed between two blocks.
template <class T>
struct ChangedEntry {
  Index row = 0;
  Index col = 0;
  T old_val{};
  T new_val{};
};

/// Difference of block B relative to block A.
template <class T>
struct BlockDelta {
  Tuples<T> added;                        ///< in B, not in A (B's value)
  Tuples<T> removed;                      ///< in A, not in B (A's value)
  std::vector<ChangedEntry<T>> changed;   ///< in both, values unequal
  std::size_t entries_scanned = 0;        ///< nnz(A) + nnz(B) examined

  bool empty() const {
    return added.empty() && removed.empty() && changed.empty();
  }
  /// Coordinates at which A and B differ in any way.
  std::size_t touched() const {
    return added.size() + removed.size() + changed.size();
  }
};

/// O(1) identity test: do two views share the exact same storage block?
/// True also when both are empty default views (nullptr == nullptr).
template <class T>
bool same_block(const MatrixView<T>& a, const MatrixView<T>& b) {
  return a.shared_storage() == b.shared_storage();
}

/// Extract the difference of B relative to A as entry streams. The merge
/// walks both blocks once; rows present in only one side are bulk-copied
/// into added/removed without column comparisons.
template <class T>
BlockDelta<T> delta(const Dcsr<T>& A, const Dcsr<T>& B) {
  BlockDelta<T> d;
  d.entries_scanned = A.nnz() + B.nnz();
  if (A.nnz() == 0 && B.nnz() == 0) return d;

  std::vector<Index> rows;
  std::vector<std::size_t> ia, ib;
  detail::merge_row_lists(A.rows(), B.rows(), rows, ia, ib);

  for (std::size_t k = 0; k < rows.size(); ++k) {
    const Index r = rows[k];
    const std::size_t a = ia[k], b = ib[k];
    if (a == detail::kNoRow) {  // row only in B: every entry added
      for (Offset p = B.ptr()[b]; p < B.ptr()[b + 1]; ++p)
        d.added.push_back(r, B.cols()[p], B.vals()[p]);
      continue;
    }
    if (b == detail::kNoRow) {  // row only in A: every entry removed
      for (Offset p = A.ptr()[a]; p < A.ptr()[a + 1]; ++p)
        d.removed.push_back(r, A.cols()[p], A.vals()[p]);
      continue;
    }
    Offset pa = A.ptr()[a], ea = A.ptr()[a + 1];
    Offset pb = B.ptr()[b], eb = B.ptr()[b + 1];
    while (pa < ea && pb < eb) {
      const Index ca = A.cols()[pa], cb = B.cols()[pb];
      if (ca < cb) {
        d.removed.push_back(r, ca, A.vals()[pa++]);
      } else if (cb < ca) {
        d.added.push_back(r, cb, B.vals()[pb++]);
      } else {
        if (!(A.vals()[pa] == B.vals()[pb]))
          d.changed.push_back({r, ca, A.vals()[pa], B.vals()[pb]});
        ++pa;
        ++pb;
      }
    }
    for (; pa < ea; ++pa) d.removed.push_back(r, A.cols()[pa], A.vals()[pa]);
    for (; pb < eb; ++pb) d.added.push_back(r, B.cols()[pb], B.vals()[pb]);
  }
  return d;
}

/// View-level delta with the block-identity fast path: identical blocks
/// (the common case for unchanged snapshot levels) return an empty delta
/// without touching a single entry.
template <class T>
BlockDelta<T> delta(const MatrixView<T>& a, const MatrixView<T>& b) {
  if (same_block(a, b)) return BlockDelta<T>{};
  return delta(a.storage(), b.storage());
}

}  // namespace gbx
