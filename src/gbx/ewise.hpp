// gbx/ewise.hpp — element-wise union (add) and intersection (mult) merges.
//
// eWiseAdd over a commutative monoid is *the* operation of the paper:
// every cascade fold (A_{i+1} += A_i) and every query (A = Σ A_i) is one
// of these merges. The kernel is a two-pass rowwise merge: pass 1 counts
// the union/intersection size per output row (parallel), pass 2 fills
// (parallel), so the output DCSR is assembled without locks or
// reallocation. ewise_add_into is the arena variant the fold pipeline
// uses: row-merge scratch comes from a ScratchPool and the output lands
// in a caller-recycled Dcsr, so steady-state cascade folds touch the
// heap only when capacities grow.
#pragma once

#include <cstddef>
#include <vector>

#include "gbx/dcsr.hpp"
#include "gbx/parallel.hpp"
#include "gbx/scratch.hpp"
#include "gbx/tsan_omp.hpp"

namespace gbx {

namespace detail {

inline constexpr std::size_t kNoRow = static_cast<std::size_t>(-1);

/// Union-merge the non-empty row lists of A and B into caller-provided
/// arrays of capacity ra.size() + rb.size(). For each output row
/// produces the indices of that row in A and in B (kNoRow if absent).
/// Returns the number of output rows.
inline std::size_t merge_row_lists_into(std::span<const Index> ra,
                                        std::span<const Index> rb,
                                        Index* out_rows, std::size_t* ia,
                                        std::size_t* ib) {
  std::size_t a = 0, b = 0, k = 0;
  while (a < ra.size() && b < rb.size()) {
    if (ra[a] < rb[b]) {
      out_rows[k] = ra[a];
      ia[k] = a++;
      ib[k] = kNoRow;
    } else if (rb[b] < ra[a]) {
      out_rows[k] = rb[b];
      ia[k] = kNoRow;
      ib[k] = b++;
    } else {
      out_rows[k] = ra[a];
      ia[k] = a++;
      ib[k] = b++;
    }
    ++k;
  }
  for (; a < ra.size(); ++a, ++k) {
    out_rows[k] = ra[a];
    ia[k] = a;
    ib[k] = kNoRow;
  }
  for (; b < rb.size(); ++b, ++k) {
    out_rows[k] = rb[b];
    ia[k] = kNoRow;
    ib[k] = b;
  }
  return k;
}

/// Vector-output variant (delta.hpp and ewise_mult still use it).
/// reserve + push_back: resize() would zero-fill three O(rows) arrays
/// that the merge immediately overwrites — real bandwidth on
/// hypersparse blocks where rows ≈ nnz.
inline void merge_row_lists(std::span<const Index> ra, std::span<const Index> rb,
                            std::vector<Index>& out_rows,
                            std::vector<std::size_t>& ia,
                            std::vector<std::size_t>& ib) {
  out_rows.clear();
  ia.clear();
  ib.clear();
  out_rows.reserve(ra.size() + rb.size());
  ia.reserve(ra.size() + rb.size());
  ib.reserve(ra.size() + rb.size());
  std::size_t a = 0, b = 0;
  while (a < ra.size() && b < rb.size()) {
    if (ra[a] < rb[b]) {
      out_rows.push_back(ra[a]);
      ia.push_back(a++);
      ib.push_back(kNoRow);
    } else if (rb[b] < ra[a]) {
      out_rows.push_back(rb[b]);
      ia.push_back(kNoRow);
      ib.push_back(b++);
    } else {
      out_rows.push_back(ra[a]);
      ia.push_back(a++);
      ib.push_back(b++);
    }
  }
  for (; a < ra.size(); ++a) {
    out_rows.push_back(ra[a]);
    ia.push_back(a);
    ib.push_back(kNoRow);
  }
  for (; b < rb.size(); ++b) {
    out_rows.push_back(rb[b]);
    ia.push_back(kNoRow);
    ib.push_back(b);
  }
}

/// Count the union size of two sorted column segments.
inline std::size_t union_count(std::span<const Index> ca,
                               std::span<const Index> cb) {
  std::size_t i = 0, j = 0, n = 0;
  while (i < ca.size() && j < cb.size()) {
    if (ca[i] < cb[j]) ++i;
    else if (cb[j] < ca[i]) ++j;
    else { ++i; ++j; }
    ++n;
  }
  return n + (ca.size() - i) + (cb.size() - j);
}

/// Count the intersection size of two sorted column segments.
inline std::size_t intersect_count(std::span<const Index> ca,
                                   std::span<const Index> cb) {
  std::size_t i = 0, j = 0, n = 0;
  while (i < ca.size() && j < cb.size()) {
    if (ca[i] < cb[j]) ++i;
    else if (cb[j] < ca[i]) ++j;
    else { ++i; ++j; ++n; }
  }
  return n;
}

}  // namespace detail

/// C = A ⊕ B (set union; both-present entries combined with Op), built
/// into a caller-recycled output block: C's vectors are resized, never
/// reallocated once their capacity has plateaued, and the row-merge
/// scratch leases from `pool`. This is the cascade-fold merge — called
/// every time a level folds into the next — so it must not allocate at
/// steady state. Preconditions: A and B non-empty, C aliases neither.
/// Op must be commutative when used from order-agnostic callers.
template <class Op, class T>
void ewise_add_into(const Dcsr<T>& A, const Dcsr<T>& B, Dcsr<T>& C,
                    ScratchPool& pool) {
  const std::size_t maxr = A.rows().size() + B.rows().size();
  auto rows = pool.acquire<Index>(maxr);
  auto ia = pool.acquire<std::size_t>(maxr);
  auto ib = pool.acquire<std::size_t>(maxr);
  const std::size_t nr = detail::merge_row_lists_into(
      A.rows(), B.rows(), rows.data(), ia.data(), ib.data());

  // Pass 1: exact per-row output counts.
  auto& cp = C.mutable_ptr();
  cp.resize(nr + 1);
  cp[0] = 0;
  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(guided)
    for (std::size_t k = 0; k < nr; ++k) {
      const std::size_t a = ia[k], b = ib[k];
      std::size_t cnt;
      if (a == detail::kNoRow) {
        cnt = static_cast<std::size_t>(B.ptr()[b + 1] - B.ptr()[b]);
      } else if (b == detail::kNoRow) {
        cnt = static_cast<std::size_t>(A.ptr()[a + 1] - A.ptr()[a]);
      } else {
        cnt = detail::union_count(
            A.cols().subspan(A.ptr()[a], A.ptr()[a + 1] - A.ptr()[a]),
            B.cols().subspan(B.ptr()[b], B.ptr()[b + 1] - B.ptr()[b]));
      }
      cp[k + 1] = cnt;
    }
  }
  for (std::size_t k = 0; k < nr; ++k) cp[k + 1] += cp[k];

  C.mutable_rows().assign(rows.data(), rows.data() + nr);
  C.mutable_cols().resize(cp[nr]);
  C.mutable_vals().resize(cp[nr]);

  // Pass 2: fill.
  auto& cc = C.mutable_cols();
  auto& cv = C.mutable_vals();
  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(guided)
    for (std::size_t k = 0; k < nr; ++k) {
      Offset w = cp[k];
      const std::size_t a = ia[k], b = ib[k];
      if (a == detail::kNoRow) {
        for (Offset p = B.ptr()[b]; p < B.ptr()[b + 1]; ++p, ++w) {
          cc[w] = B.cols()[p];
          cv[w] = B.vals()[p];
        }
        continue;
      }
      if (b == detail::kNoRow) {
        for (Offset p = A.ptr()[a]; p < A.ptr()[a + 1]; ++p, ++w) {
          cc[w] = A.cols()[p];
          cv[w] = A.vals()[p];
        }
        continue;
      }
      Offset pa = A.ptr()[a], ea = A.ptr()[a + 1];
      Offset pb = B.ptr()[b], eb = B.ptr()[b + 1];
      while (pa < ea && pb < eb) {
        const Index caI = A.cols()[pa], cbI = B.cols()[pb];
        if (caI < cbI) {
          cc[w] = caI;
          cv[w++] = A.vals()[pa++];
        } else if (cbI < caI) {
          cc[w] = cbI;
          cv[w++] = B.vals()[pb++];
        } else {
          cc[w] = caI;
          cv[w++] = Op::apply(A.vals()[pa++], B.vals()[pb++]);
        }
      }
      for (; pa < ea; ++pa, ++w) {
        cc[w] = A.cols()[pa];
        cv[w] = A.vals()[pa];
      }
      for (; pb < eb; ++pb, ++w) {
        cc[w] = B.cols()[pb];
        cv[w] = B.vals()[pb];
      }
    }
  }
}

/// C = A ⊕ B returning a fresh block. Delegates to ewise_add_into with
/// the calling thread's scratch pool (row-merge scratch recycled).
template <class Op, class T>
Dcsr<T> ewise_add(const Dcsr<T>& A, const Dcsr<T>& B) {
  if (A.empty()) return B;
  if (B.empty()) return A;
  Dcsr<T> C;
  ewise_add_into<Op>(A, B, C, ScratchPool::local());
  return C;
}

/// C = A ⊗ B (set intersection; values combined with Op). Rows present in
/// only one operand vanish, as do rows whose column intersection is empty.
template <class Op, class T>
Dcsr<T> ewise_mult(const Dcsr<T>& A, const Dcsr<T>& B) {
  Dcsr<T> C;
  if (A.empty() || B.empty()) return C;

  std::vector<Index> rows;
  std::vector<std::size_t> ia, ib;
  detail::merge_row_lists(A.rows(), B.rows(), rows, ia, ib);
  const std::size_t nr = rows.size();

  std::vector<Offset> cnt(nr, 0);
  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(guided)
    for (std::size_t k = 0; k < nr; ++k) {
      if (ia[k] == detail::kNoRow || ib[k] == detail::kNoRow) continue;
      cnt[k] = detail::intersect_count(
          A.cols().subspan(A.ptr()[ia[k]], A.ptr()[ia[k] + 1] - A.ptr()[ia[k]]),
          B.cols().subspan(B.ptr()[ib[k]], B.ptr()[ib[k] + 1] - B.ptr()[ib[k]]));
    }
  }

  // Compact away empty output rows while building ptr.
  std::vector<Index> out_rows;
  std::vector<std::size_t> oia, oib;
  std::vector<Offset> ptr{0};
  for (std::size_t k = 0; k < nr; ++k) {
    if (cnt[k] == 0) continue;
    out_rows.push_back(rows[k]);
    oia.push_back(ia[k]);
    oib.push_back(ib[k]);
    ptr.push_back(ptr.back() + cnt[k]);
  }
  const std::size_t onr = out_rows.size();

  C.mutable_rows() = std::move(out_rows);
  C.mutable_ptr() = std::move(ptr);
  C.mutable_cols().resize(C.mutable_ptr()[onr]);
  C.mutable_vals().resize(C.mutable_ptr()[onr]);

  auto& cp = C.mutable_ptr();
  auto& cc = C.mutable_cols();
  auto& cv = C.mutable_vals();
  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(guided)
    for (std::size_t k = 0; k < onr; ++k) {
      Offset w = cp[k];
      Offset pa = A.ptr()[oia[k]], ea = A.ptr()[oia[k] + 1];
      Offset pb = B.ptr()[oib[k]], eb = B.ptr()[oib[k] + 1];
      while (pa < ea && pb < eb) {
        const Index caI = A.cols()[pa], cbI = B.cols()[pb];
        if (caI < cbI) ++pa;
        else if (cbI < caI) ++pb;
        else {
          cc[w] = caI;
          cv[w++] = Op::apply(A.vals()[pa++], B.vals()[pb++]);
        }
      }
    }
  }
  return C;
}

}  // namespace gbx
