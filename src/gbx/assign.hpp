// gbx/assign.hpp — region assignment (GrB_assign analogue).
//
// C(I, J) = A replaces the selected region of C with A (remapped from
// list positions back to C coordinates). Entries of C inside the region
// that A does not cover are deleted, matching GraphBLAS assign-with-
// replace semantics.
#pragma once

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "gbx/extract.hpp"
#include "gbx/matrix.hpp"
#include "gbx/select.hpp"

namespace gbx {

/// C(I, J) = A. I, J sorted unique; A must be |I| x |J|.
template <class T, class M>
void assign(Matrix<T, M>& C, std::span<const Index> I, std::span<const Index> J,
            const Matrix<T, M>& A) {
  GBX_CHECK_DIM(A.nrows() == I.size() && A.ncols() == J.size(),
                "assign: source dims must match index list lengths");
  GBX_CHECK(std::is_sorted(I.begin(), I.end()) &&
                std::adjacent_find(I.begin(), I.end()) == I.end(),
            "row index list must be sorted and unique");
  GBX_CHECK(std::is_sorted(J.begin(), J.end()) &&
                std::adjacent_find(J.begin(), J.end()) == J.end(),
            "column index list must be sorted and unique");
  for (Index i : I) GBX_CHECK_INDEX(i < C.nrows(), "assign row out of bounds");
  for (Index j : J) GBX_CHECK_INDEX(j < C.ncols(), "assign column out of bounds");

  std::unordered_set<Index> iset(I.begin(), I.end());
  std::unordered_set<Index> jset(J.begin(), J.end());

  // Keep C entries outside the region.
  Matrix<T, M> kept = select(C, [&](Index i, Index j, T) {
    return !(iset.count(i) && jset.count(j));
  });

  // Remap A into C coordinates and merge.
  Tuples<T> add;
  A.for_each([&](Index a, Index b, T v) {
    add.push_back(I[static_cast<std::size_t>(a)],
                  J[static_cast<std::size_t>(b)], v);
  });
  kept.append(add);
  kept.materialize();
  C = std::move(kept);
}

}  // namespace gbx
