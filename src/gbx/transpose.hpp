// gbx/transpose.hpp — matrix transpose.
#pragma once

#include "gbx/matrix.hpp"
#include "gbx/sort.hpp"

namespace gbx {

/// C = A^T. Sort-based: swap coordinates, re-sort (parallel), reassemble.
template <class T, class M>
Matrix<T, M> transpose(const Matrix<T, M>& A) {
  const Dcsr<T>& s = A.storage();
  std::vector<Entry<T>> ent;
  ent.reserve(s.nnz());
  s.for_each([&](Index i, Index j, T v) { ent.push_back({j, i, v}); });
  sort_entries(ent);
  return Matrix<T, M>::adopt(A.ncols(), A.nrows(),
                             Dcsr<T>::from_sorted_unique(ent));
}

}  // namespace gbx
