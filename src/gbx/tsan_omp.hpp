// gbx/tsan_omp.hpp — ThreadSanitizer happens-before bridging for OpenMP
// regions.
//
// libgomp is not TSan-instrumented, so the futex-based barriers that
// order an OpenMP fork/join are invisible to the race detector: every
// master-writes-then-workers-read handoff (chunk tables, histograms,
// scatter cursors) and every workers-write-then-master-reads join looks
// like an unsynchronized race. Historically the TSan preset simply
// disabled OpenMP, leaving kernel-internal parallelism unchecked — the
// standing ROADMAP residual.
//
// Two mechanisms cooperate, one per direction of the fork handoff:
//
// 1. Annotated barriers (OmpRegionGuard). Inside the region, every team
//    thread wraps an (orphaned, hence header-inlinable) `#pragma omp
//    barrier` in a release/acquire pair on a shared sync address:
//
//        __tsan_release(&entry_sync);
//        #pragma omp barrier            // the REAL ordering
//        __tsan_acquire(&entry_sync);
//
//    The physical barrier guarantees all releases execute before any
//    acquire, so each acquire observes every thread's clock. This
//    reconstructs for TSan exactly the all-to-all ordering the barrier
//    really provides, and nothing stronger at that point: races between
//    barriers stay visible. The guard runs this at region entry (ctor:
//    master's pre-fork writes → workers) and exit (dtor: worker outputs
//    → master's post-region reads).
//
// 2. Capture-store ignoring (OmpCaptureGuard / GBX_OMP_CAPTURE_HANDOFF).
//    GCC materializes the region's shared-variable capture (the
//    .omp_data struct) on the master's stack AT the pragma, and workers
//    load those fields in the outlined function's PROLOGUE — before any
//    statement of ours can run, so no barrier annotation can cover this
//    one handoff. (It is also un-fixable by fencing: GCC emits the
//    receiver as const/restrict, so the prologue loads legally hoist
//    across anything, including asm memory clobbers — observed in
//    ._omp_fn disassembly.) Two narrow ignore windows make the handoff
//    invisible instead:
//
//    - The master brackets the fork with AnnotateIgnoreWritesBegin/End
//      (Begin just before the pragma, End as thread 0's first act in
//      the region), hiding the capture stores themselves.
//    - Each pool worker runs with READS ignored from the end of its
//      first region for the rest of its life (guard dtor sets it,
//      tracked by a thread_local). The prologue loads — which land on
//      stack bytes the master's serial code reused for spills since
//      the last barrier (observed: TSan pairing a prologue load with
//      an unrelated master spill at the same address) — are thereby
//      never recorded. The window cannot close inside the region:
//      because GCC emits the receiver const, it may legally schedule a
//      prologue load across ANY call we make there, including the
//      close itself (observed at -O2 in reduce's region). A fresh
//      worker's first region needs no window: thread creation orders
//      the fork.
//
//    Worker reads being unrecorded narrows read-race coverage less
//    than it sounds: pool workers execute nothing but region bodies,
//    every write (worker or master) stays instrumented, and the
//    master runs the same loop body over its own chunk with reads
//    fully recorded, so a racy shared read pattern is still seen
//    through thread 0's accesses. Racing WRITES into a region are
//    caught on any thread.
//
// Usage — split a combined `parallel for` so the guard can live inside
// the region, and declare the capture handoff just before the pragma:
//
//   GBX_OMP_CAPTURE_HANDOFF;
//   #pragma omp parallel
//     {
//       gbx::OmpRegionGuard tsan_region;
//   #pragma omp for schedule(static)
//       for (int c = 0; c < nchunks; ++c) { ... }
//     }
//
// Every team thread must construct OmpRegionGuard (all threads must
// reach both barriers), so declare it unconditionally as the FIRST
// statement of the parallel block — never under an `if`, and before
// any other local so its destructor runs last.
//
// Ignore bookkeeping (each pair on one thread, never nested, so the
// counters always balance):
//
//   GBX_OMP_CAPTURE_HANDOFF   IgnoreWritesBegin   (master, before fork)
//   OmpRegionGuard ctor       IgnoreWritesEnd     (thread 0, in region)
//   OmpRegionGuard dtor       IgnoreReadsBegin    (workers, first region
//                                                  exit, once per thread)
//   thread_local dtor         IgnoreReadsEnd      (worker exit)
//
// The worker read window must be closed before the thread finishes or
// TSan's finished-with-ignores check trips — and pool threads DO exit
// mid-run (libgomp frees a pool when its master thread, e.g. a
// ParallelStream lane, exits). The flag is therefore a thread_local
// object whose destructor closes the window: glibc runs C++
// thread_local destructors (__call_tls_dtors) before the pthread-key
// destructors TSan finalizes the thread from.
//
// Precision trade-offs, both deliberate: (a) the barrier sync addresses
// are globals shared by all teams, so a guard passage also inherits
// clocks from unrelated teams — that can only over-synchronize
// (suppress, never fabricate, reports) and only across region
// boundaries; races between concurrently running region bodies are
// unaffected. (b) the master's stores between Begin/End (the capture
// struct, plus anything else in that tiny window) go unrecorded. Doing
// better needs an OMPT-style instrumented runtime, which libgomp is
// not (archer gets per-team sync from LLVM's libomp).
//
// Cost: one extra physical barrier per region entry and exit, in TSan
// builds only — non-TSan builds compile everything here to nothing
// (and the split `parallel`+`for` is codegen-identical to the combined
// form).
//
// Fallback: if a region cannot take the guards (e.g. third-party
// code), or an instrumented OpenMP runtime surfaces, configure with
// -DHHGBX_TSAN_OPENMP=OFF to restore the old behaviour (OpenMP
// disabled under HHGBX_SANITIZE=thread; pragmas degrade to serial
// loops).
#pragma once

#if defined(__SANITIZE_THREAD__)
#define GBX_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GBX_TSAN_ENABLED 1
#endif
#endif

#ifndef GBX_TSAN_ENABLED
#define GBX_TSAN_ENABLED 0
#endif

#if GBX_TSAN_ENABLED

#ifdef _OPENMP
#include <omp.h>
#endif

// Provided by the TSan runtime (tsan_interface.h / dynamic_annotations,
// which ship with the compiler only in some distributions — declaring
// the entry points directly keeps this header self-contained). The
// Annotate* pair is exported by both GCC's libtsan and compiler-rt.
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
void AnnotateIgnoreWritesBegin(const char* file, int line);
void AnnotateIgnoreWritesEnd(const char* file, int line);
void AnnotateIgnoreReadsBegin(const char* file, int line);
void AnnotateIgnoreReadsEnd(const char* file, int line);
}
#endif

namespace gbx {

#if GBX_TSAN_ENABLED

namespace detail {
// Global sync addresses for the annotated barriers. Distinct entry/exit
// vars keep the two handoff directions' clocks apart; see the header
// comment for the cross-team precision trade-off of globals.
inline char tsan_omp_entry_sync = 0;
inline char tsan_omp_exit_sync = 0;

inline bool omp_team_master() {
#ifdef _OPENMP
  return omp_get_thread_num() == 0;
#else
  return true;
#endif
}

// Tracks whether this pool worker's lifetime read-ignore window is
// open (set once at its first region's exit), and closes it when the
// worker exits (see header comment on pool teardown).
struct TsanOmpReadsIgnored {
  bool on = false;
  ~TsanOmpReadsIgnored() {
    if (on) AnnotateIgnoreReadsEnd(__FILE__, __LINE__);
  }
};
inline thread_local TsanOmpReadsIgnored tsan_omp_reads_ignored;
}  // namespace detail

/// RAII annotated barriers for one OpenMP region: construct as the
/// first statement of the parallel block (every thread), destroy at
/// block end. Ctor publishes pre-region writes to all team threads;
/// dtor publishes each thread's writes to whoever runs after the join.
/// Thread 0's ctor also closes the write-ignore window that
/// GBX_OMP_CAPTURE_HANDOFF opened just before the fork, so the
/// master's share of the body is fully instrumented. Deliberately NOT
/// a Begin/End RAII pair on the serial side: a scope-end destructor
/// would leave ignores enabled across everything after the region
/// (sibling regions, serial prefix sums) until the enclosing scope
/// closes.
class OmpRegionGuard {
 public:
  OmpRegionGuard() {
    if (detail::omp_team_master()) {
      AnnotateIgnoreWritesEnd(__FILE__, __LINE__);
    }
    __tsan_release(&detail::tsan_omp_entry_sync);
#ifdef _OPENMP
#pragma omp barrier
#endif
    __tsan_acquire(&detail::tsan_omp_entry_sync);
    // Compiler-level fence: keeps body accesses (and their TSan
    // instrumentation calls) from scheduling above the acquire.
    __asm__ __volatile__("" ::: "memory");
  }
  OmpRegionGuard(const OmpRegionGuard&) = delete;
  OmpRegionGuard& operator=(const OmpRegionGuard&) = delete;
  ~OmpRegionGuard() {
    // Mirror image: keep body writes from sinking below the release.
    __asm__ __volatile__("" ::: "memory");
    __tsan_release(&detail::tsan_omp_exit_sync);
#ifdef _OPENMP
#pragma omp barrier
#endif
    __tsan_acquire(&detail::tsan_omp_exit_sync);
    if (!detail::omp_team_master() && !detail::tsan_omp_reads_ignored.on) {
      AnnotateIgnoreReadsBegin(__FILE__, __LINE__);
      detail::tsan_omp_reads_ignored.on = true;
    }
  }
};

// Opens the fork's write-ignore window; the region's OmpRegionGuard
// ctor closes it on thread 0. Place as the statement immediately
// before `#pragma omp parallel` — nothing may intervene, or its writes
// go unrecorded too.
#define GBX_OMP_CAPTURE_HANDOFF \
  ::AnnotateIgnoreWritesBegin(__FILE__, __LINE__)

#else

/// Non-TSan builds: a no-op the optimizer deletes entirely. The
/// user-provided ctor/dtor keep `gbx::OmpRegionGuard tsan_region;`
/// clear of -Wunused-variable under -Werror.
class OmpRegionGuard {
 public:
  OmpRegionGuard() {}
  OmpRegionGuard(const OmpRegionGuard&) = delete;
  OmpRegionGuard& operator=(const OmpRegionGuard&) = delete;
  ~OmpRegionGuard() {}
};

// Declaration-shaped no-op so call sites keep their trailing semicolon.
#define GBX_OMP_CAPTURE_HANDOFF static_assert(true, "")

#endif  // GBX_TSAN_ENABLED

}  // namespace gbx
