// gbx/fold.hpp — the fused pending-fold pipeline.
//
// The seed fold path ran three separate kernels per cascade fold, each
// with its own allocations: comparison sort over AoS entries, a dedup
// pass, Dcsr::from_sorted_unique into a fresh block, then a two-pass
// ewise union producing yet another block. This header fuses the chain:
//
//   pending entries ── radix sort (packed keys, SoA, scratch-backed)
//                   ── dedup during the final scatter pass
//                   ── one streaming merge straight into the destination
//                      level's DCSR (no intermediate Dcsr, exact-capacity
//                      reserve into a recycled spare block)
//
// `with_fold_run` produces the sorted unique run (zero-copy view over
// ScratchPool buffers on the packed fast path, over the pending vector
// itself on the comparison fallback); `merge_run_into` / `build_from_run`
// consume it. gbx::Matrix drives the pipeline from materialize(),
// plus_assign() and fold_from().
//
// A global pipeline switch keeps the pre-PR kernels selectable at
// runtime so differential tests and the ingest bench can pit the two
// implementations against each other on identical streams.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "gbx/dcsr.hpp"
#include "gbx/scratch.hpp"
#include "gbx/sort.hpp"

namespace gbx {

/// Which fold implementation gbx::Matrix uses. kLegacy replays the seed
/// pipeline (comparison sort + dedup + from_sorted_unique + ewise_add
/// with fresh allocations); kFused is the radix/scratch pipeline above.
/// Process-global and meant to be flipped only from quiescent test/bench
/// harness code, not while folds are in flight.
enum class FoldPipeline { kLegacy, kFused };

namespace detail {
inline std::atomic<FoldPipeline> g_fold_pipeline{FoldPipeline::kFused};
}  // namespace detail

inline FoldPipeline fold_pipeline() {
  return detail::g_fold_pipeline.load(std::memory_order_relaxed);
}
inline void set_fold_pipeline(FoldPipeline p) {
  detail::g_fold_pipeline.store(p, std::memory_order_relaxed);
}

namespace detail {

/// Sorted unique run in packed-key SoA form (ScratchPool-backed).
template <class T>
struct PackedRun {
  const std::uint64_t* keys;
  const T* vals;
  std::size_t n;
  int col_bits;
  std::uint64_t col_mask;

  std::size_t size() const { return n; }
  Index row(std::size_t i) const {
    return static_cast<Index>(keys[i] >> col_bits);
  }
  Index col(std::size_t i) const {
    return static_cast<Index>(keys[i] & col_mask);
  }
  const T& val(std::size_t i) const { return vals[i]; }
};

/// Sorted unique run over entry structs (comparison-fallback form).
template <class T>
struct AosRun {
  const Entry<T>* e;
  std::size_t n;

  std::size_t size() const { return n; }
  Index row(std::size_t i) const { return e[i].row; }
  Index col(std::size_t i) const { return e[i].col; }
  const T& val(std::size_t i) const { return e[i].val; }
};

/// Radix sort + fused dedup of n (key, value) pairs. Serially the dedup
/// happens inside the final scatter pass: LSD stability makes equal keys
/// arrive consecutively per bucket, so the scatter folds into the
/// bucket's last written slot instead of advancing, and a short
/// bucket-compaction walk closes the gaps. The parallel path sorts with
/// per-thread histograms and dedups in one linear SoA pass. Returns the
/// number of unique keys; *out_flip says which ping-pong buffer holds
/// them.
template <class MonoidT, class T>
std::size_t radix_sort_dedup_pairs(std::uint64_t* k0, T* v0,
                                   std::uint64_t* k1, T* v1, std::size_t n,
                                   int total_bits, ScratchPool& pool,
                                   bool* out_flip) {
  *out_flip = false;
  if (n == 0) return 0;
  const int threads = max_threads();

  if (threads > 1 && n >= kParallelSortCutoff) {
    *out_flip = radix_sort_pairs(k0, v0, k1, v1, n, total_bits, pool);
    std::uint64_t* k = *out_flip ? k1 : k0;
    T* v = *out_flip ? v1 : v0;
    return dedup_pairs<MonoidT>(k, v, n);
  }

  // Serial: all per-pass histograms in one read (shared radix helpers);
  // the last non-constant pass doubles as the dedup pass.
  const int digit_bits = total_bits == 0 ? 1 : radix_digit_bits(total_bits);
  const int buckets = 1 << digit_bits;
  const std::uint64_t mask = static_cast<std::uint64_t>(buckets - 1);
  const int npasses = (total_bits + digit_bits - 1) / digit_bits;
  auto hist = pool.acquire<Offset>(static_cast<std::size_t>(npasses ? npasses : 1) *
                                   static_cast<std::size_t>(buckets));
  radix_histograms(k0, n, npasses, digit_bits, buckets, mask, hist.data());
  auto h_at = [&](int p) {
    return hist.data() + static_cast<std::size_t>(p) * buckets;
  };

  int last_active = -1;
  for (int p = 0; p < npasses; ++p)
    if (!radix_digit_constant(h_at(p), buckets, n)) last_active = p;
  if (last_active < 0) {
    // Every key identical: fold all values into slot 0.
    for (std::size_t i = 1; i < n; ++i) v0[0] = MonoidT::apply(v0[0], v0[i]);
    return 1;
  }

  std::uint64_t* ka = k0;
  T* va = v0;
  std::uint64_t* kb = k1;
  T* vb = v1;
  bool flip = false;
  for (int p = 0; p < last_active; ++p) {
    const Offset* h = h_at(p);
    if (radix_digit_constant(h, buckets, n)) continue;
    radix_scatter_pass(ka, va, kb, vb, n, p * digit_bits, mask, h, buckets);
    std::swap(ka, kb);
    std::swap(va, vb);
    flip = !flip;
  }

  // Final pass: scatter with in-bucket dedup. Equal full keys share
  // every digit, and the input is sorted (stably) by all lower digits,
  // so within a bucket they arrive back to back — comparing against the
  // bucket's last written key is enough.
  {
    const int shift = last_active * digit_bits;
    const Offset* h = h_at(last_active);
    Offset start[kRadixMaxBuckets];
    Offset cur[kRadixMaxBuckets];
    Offset acc = 0;
    for (int d = 0; d < buckets; ++d) {
      start[d] = acc;
      cur[d] = acc;
      acc += h[d];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto d = (ka[i] >> shift) & mask;
      const Offset w = cur[d];
      if (w > start[d] && kb[w - 1] == ka[i]) {
        vb[w - 1] = MonoidT::apply(vb[w - 1], va[i]);
      } else {
        kb[w] = ka[i];
        vb[w] = va[i];
        cur[d] = w + 1;
      }
    }
    // Compact the per-bucket gaps left by folded duplicates.
    std::size_t w = 0;
    for (int d = 0; d < buckets; ++d) {
      const std::size_t lo = start[d];
      const std::size_t len = cur[d] - start[d];
      if (len == 0) continue;
      if (w != lo) {
        std::copy(kb + lo, kb + lo + len, kb + w);
        std::copy(vb + lo, vb + lo + len, vb + w);
      }
      w += len;
    }
    flip = !flip;
    *out_flip = flip;
    return w;
  }
}

}  // namespace detail

/// Sort `pending` by (row, col), fold duplicate keys with MonoidT, and
/// invoke f(run) with a zero-copy view of the sorted unique run. The run
/// lives in ScratchPool buffers (packed radix fast path) or in `pending`
/// itself (std::sort below the cutoff, comparison sample sort when the
/// coordinates cannot pack into 64 bits) and is valid only inside f.
/// `pending`'s contents are consumed (left unspecified).
template <class MonoidT, class T, class F>
void with_fold_run(std::vector<Entry<T>>& pending, ScratchPool& pool, F&& f) {
  const std::size_t n = pending.size();
  if (n == 0) {
    f(detail::AosRun<T>{pending.data(), 0});
    return;
  }
  if (n < detail::kRadixSortCutoff) {
    std::sort(pending.begin(), pending.end(), entry_less<T>);
    const std::size_t m = dedup_sorted_entries<MonoidT>(pending);
    f(detail::AosRun<T>{pending.data(), m});
    return;
  }
  const auto layout = detail::radix_layout(pending.data(), n);
  if (!layout.packable) {
    sort_entries_comparison(pending);
    const std::size_t m = dedup_sorted_entries_parallel<MonoidT>(pending);
    f(detail::AosRun<T>{pending.data(), m});
    return;
  }
  auto k0 = pool.acquire<std::uint64_t>(n);
  auto k1 = pool.acquire<std::uint64_t>(n);
  auto v0 = pool.acquire<T>(n);
  auto v1 = pool.acquire<T>(n);
  detail::pack_keys(pending.data(), n, layout, k0.data(), v0.data());
  bool flip = false;
  const std::size_t m = detail::radix_sort_dedup_pairs<MonoidT>(
      k0.data(), v0.data(), k1.data(), v1.data(), n, layout.total_bits, pool,
      &flip);
  f(detail::PackedRun<T>{flip ? k1.data() : k0.data(),
                         flip ? v1.data() : v0.data(), m, layout.col_bits,
                         layout.col_mask});
}

/// Build `out` from a sorted unique run alone (empty-destination fold).
/// Reuses out's vector capacity; no other allocation.
template <class T, class Run>
void build_from_run(const Run& run, Dcsr<T>& out) {
  auto& rows = out.mutable_rows();
  auto& ptr = out.mutable_ptr();
  auto& cols = out.mutable_cols();
  auto& vals = out.mutable_vals();
  rows.clear();
  ptr.clear();
  cols.clear();
  vals.clear();
  const std::size_t n = run.size();
  cols.reserve(n);
  vals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Index r = run.row(i);
    if (rows.empty() || rows.back() != r) {
      rows.push_back(r);
      ptr.push_back(static_cast<Offset>(cols.size()));
    }
    cols.push_back(run.col(i));
    vals.push_back(run.val(i));
  }
  ptr.push_back(static_cast<Offset>(cols.size()));
}

/// C = A ⊕ B in ONE serial streaming pass (exact-capacity reserve, no
/// counting pass, no zero-fill): the serial complement of
/// ewise_add_into's parallel counts-then-fill. With one thread the
/// counting pass would just double the reads of both blocks, so the
/// fold pipeline picks this variant whenever the parallel fill cannot
/// actually run in parallel (or the blocks are small). `out` must not
/// alias A or B; A and B non-empty.
template <class Op, class T>
void merge_blocks_into(const Dcsr<T>& A, const Dcsr<T>& B, Dcsr<T>& out) {
  auto& orows = out.mutable_rows();
  auto& optr = out.mutable_ptr();
  auto& ocols = out.mutable_cols();
  auto& ovals = out.mutable_vals();
  orows.clear();
  optr.clear();
  ocols.clear();
  ovals.clear();

  const auto ar = A.rows(), ac = A.cols();
  const auto br = B.rows(), bc = B.cols();
  const auto ap = A.ptr(), bp = B.ptr();
  const auto av = A.vals(), bv = B.vals();
  const std::size_t nra = ar.size(), nrb = br.size();
  orows.reserve(nra + nrb);
  optr.reserve(nra + nrb + 1);
  ocols.reserve(ac.size() + bc.size());
  ovals.reserve(ac.size() + bc.size());

  auto open_row = [&](Index row) {
    orows.push_back(row);
    optr.push_back(static_cast<Offset>(ocols.size()));
  };
  auto copy_row = [&](Index row, std::span<const Index> cols,
                      std::span<const T> vals, Offset lo, Offset hi) {
    open_row(row);
    for (Offset p = lo; p < hi; ++p) {
      ocols.push_back(cols[p]);
      ovals.push_back(vals[p]);
    }
  };

  std::size_t ka = 0, kb = 0;
  while (ka < nra && kb < nrb) {
    if (ar[ka] < br[kb]) {
      copy_row(ar[ka], ac, av, ap[ka], ap[ka + 1]);
      ++ka;
    } else if (br[kb] < ar[ka]) {
      copy_row(br[kb], bc, bv, bp[kb], bp[kb + 1]);
      ++kb;
    } else {
      open_row(ar[ka]);
      Offset pa = ap[ka], ea = ap[ka + 1];
      Offset pb = bp[kb], eb = bp[kb + 1];
      while (pa < ea && pb < eb) {
        const Index caI = ac[pa], cbI = bc[pb];
        if (caI < cbI) {
          ocols.push_back(caI);
          ovals.push_back(av[pa++]);
        } else if (cbI < caI) {
          ocols.push_back(cbI);
          ovals.push_back(bv[pb++]);
        } else {
          ocols.push_back(caI);
          ovals.push_back(Op::apply(av[pa++], bv[pb++]));
        }
      }
      for (; pa < ea; ++pa) {
        ocols.push_back(ac[pa]);
        ovals.push_back(av[pa]);
      }
      for (; pb < eb; ++pb) {
        ocols.push_back(bc[pb]);
        ovals.push_back(bv[pb]);
      }
      ++ka;
      ++kb;
    }
  }
  for (; ka < nra; ++ka) copy_row(ar[ka], ac, av, ap[ka], ap[ka + 1]);
  for (; kb < nrb; ++kb) copy_row(br[kb], bc, bv, bp[kb], bp[kb + 1]);
  optr.push_back(static_cast<Offset>(ocols.size()));
}

namespace detail {
/// Below this combined nnz the parallel counts-then-fill cannot beat
/// the single streaming pass even with threads available.
inline constexpr std::size_t kParallelMergeCutoff = std::size_t{1} << 20;
}  // namespace detail

/// C = A ⊕ run in ONE streaming pass: walk A's rows and the run
/// simultaneously, emitting merged rows straight into `out` (capacity
/// reserved to the exact upper bound up front, so no reallocation and no
/// counting pass). Values present on both sides combine as
/// Op::apply(A value, run value) — the same order as ewise_add(A, delta)
/// on the legacy path. `out` must not alias A.
template <class Op, class T, class Run>
void merge_run_into(const Dcsr<T>& A, const Run& run, Dcsr<T>& out) {
  auto& orows = out.mutable_rows();
  auto& optr = out.mutable_ptr();
  auto& ocols = out.mutable_cols();
  auto& ovals = out.mutable_vals();
  orows.clear();
  optr.clear();
  ocols.clear();
  ovals.clear();

  const auto ar = A.rows();
  const auto ap = A.ptr();
  const auto ac = A.cols();
  const auto av = A.vals();
  const std::size_t nra = ar.size();
  const std::size_t nr = run.size();
  orows.reserve(nra + nr);
  optr.reserve(nra + nr + 1);
  ocols.reserve(ac.size() + nr);
  ovals.reserve(ac.size() + nr);

  auto open_row = [&](Index row) {
    orows.push_back(row);
    optr.push_back(static_cast<Offset>(ocols.size()));
  };
  auto copy_a_row = [&](std::size_t k) {
    open_row(ar[k]);
    for (Offset p = ap[k]; p < ap[k + 1]; ++p) {
      ocols.push_back(ac[p]);
      ovals.push_back(av[p]);
    }
  };

  std::size_t ka = 0, r = 0;
  while (ka < nra && r < nr) {
    const Index rowa = ar[ka];
    const Index rowr = run.row(r);
    if (rowa < rowr) {
      copy_a_row(ka++);
    } else if (rowr < rowa) {
      open_row(rowr);
      do {
        ocols.push_back(run.col(r));
        ovals.push_back(run.val(r));
        ++r;
      } while (r < nr && run.row(r) == rowr);
    } else {
      open_row(rowa);
      Offset pa = ap[ka], ea = ap[ka + 1];
      while (pa < ea && r < nr && run.row(r) == rowa) {
        const Index caI = ac[pa], crI = run.col(r);
        if (caI < crI) {
          ocols.push_back(caI);
          ovals.push_back(av[pa++]);
        } else if (crI < caI) {
          ocols.push_back(crI);
          ovals.push_back(run.val(r++));
        } else {
          ocols.push_back(caI);
          ovals.push_back(Op::apply(av[pa++], run.val(r++)));
        }
      }
      for (; pa < ea; ++pa) {
        ocols.push_back(ac[pa]);
        ovals.push_back(av[pa]);
      }
      for (; r < nr && run.row(r) == rowa; ++r) {
        ocols.push_back(run.col(r));
        ovals.push_back(run.val(r));
      }
      ++ka;
    }
  }
  for (; ka < nra; ++ka) copy_a_row(ka);
  while (r < nr) {
    const Index rowr = run.row(r);
    open_row(rowr);
    do {
      ocols.push_back(run.col(r));
      ovals.push_back(run.val(r));
      ++r;
    } while (r < nr && run.row(r) == rowr);
  }
  optr.push_back(static_cast<Offset>(ocols.size()));
}

}  // namespace gbx
