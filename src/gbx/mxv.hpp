// gbx/mxv.hpp — sparse matrix-vector products over a semiring.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "gbx/matrix.hpp"
#include "gbx/semiring.hpp"
#include "gbx/tsan_omp.hpp"
#include "gbx/vector.hpp"

namespace gbx {

/// y = A ⊕.⊗ x. Sparse-dot per stored row of A (two-pointer intersection
/// of the row pattern with x's index list), parallel over rows.
template <class S, class T, class M>
SparseVector<T> mxv(const Matrix<T, M>& A, const SparseVector<T>& x) {
  GBX_CHECK_DIM(A.ncols() == x.size(), "mxv dimension mismatch");
  const Dcsr<T>& s = A.storage();
  const auto xi = x.indices();
  const auto xv = x.values();
  const std::size_t nr = s.nrows_nonempty();

  std::vector<T> acc(nr, S::zero());
  std::vector<char> hit(nr, 0);
  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(guided)
    for (std::size_t k = 0; k < nr; ++k) {
      Offset p = s.ptr()[k];
      const Offset e = s.ptr()[k + 1];
      std::size_t q = 0;
      T a = S::zero();
      bool any = false;
      while (p < e && q < xi.size()) {
        const Index cj = s.cols()[p];
        if (cj < xi[q]) ++p;
        else if (xi[q] < cj) ++q;
        else {
          a = S::add(a, S::mul(s.vals()[p], xv[q]));
          any = true;
          ++p;
          ++q;
        }
      }
      acc[k] = a;
      hit[k] = any ? 1 : 0;
    }
  }

  std::vector<Index> oi;
  std::vector<T> ov;
  for (std::size_t k = 0; k < nr; ++k)
    if (hit[k]) {
      oi.push_back(s.rows()[k]);
      ov.push_back(acc[k]);
    }
  SparseVector<T> y(A.nrows());
  y.adopt(std::move(oi), std::move(ov));
  return y;
}

/// y = x ⊕.⊗ A (row vector times matrix). Scatter-accumulate per column
/// into per-thread hash maps, then monoid-merge the maps.
template <class S, class T, class M>
SparseVector<T> vxm(const SparseVector<T>& x, const Matrix<T, M>& A) {
  GBX_CHECK_DIM(x.size() == A.nrows(), "vxm dimension mismatch");
  const Dcsr<T>& s = A.storage();
  const auto xi = x.indices();
  const auto xv = x.values();
  const auto rows = s.rows();

  const int threads = max_threads();
  std::vector<std::unordered_map<Index, T>> local(
      static_cast<std::size_t>(threads));

  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel num_threads(threads)
  {
    gbx::OmpRegionGuard tsan_region;
    auto& acc = local[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(guided)
    for (std::size_t q = 0; q < xi.size(); ++q) {
      auto rit = std::lower_bound(rows.begin(), rows.end(), xi[q]);
      if (rit == rows.end() || *rit != xi[q]) continue;
      const std::size_t k = static_cast<std::size_t>(rit - rows.begin());
      for (Offset p = s.ptr()[k]; p < s.ptr()[k + 1]; ++p) {
        const T prod = S::mul(xv[q], s.vals()[p]);
        auto [slot, fresh] = acc.try_emplace(s.cols()[p], prod);
        if (!fresh) slot->second = S::add(slot->second, prod);
      }
    }
  }

  std::unordered_map<Index, T> merged;
  for (auto& m : local)
    for (const auto& [j, v] : m) {
      auto [slot, fresh] = merged.try_emplace(j, v);
      if (!fresh) slot->second = S::add(slot->second, v);
    }

  std::vector<std::pair<Index, T>> out(merged.begin(), merged.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Index> oi(out.size());
  std::vector<T> ov(out.size());
  for (std::size_t k = 0; k < out.size(); ++k) {
    oi[k] = out[k].first;
    ov[k] = out[k].second;
  }
  SparseVector<T> y(A.ncols());
  y.adopt(std::move(oi), std::move(ov));
  return y;
}

}  // namespace gbx
