// gbx/kron.hpp — Kronecker product (GrB_kronecker analogue).
//
// C = A ⊗ B over a multiplicative op: C(ia*nb_r + ib, ja*nb_c + jb) =
// mul(A(ia,ja), B(ib,jb)). Kronecker products both stress the hypersparse
// formats and power the Graph500-style generators in gen/.
#pragma once

#include "gbx/matrix.hpp"
#include "gbx/sort.hpp"

namespace gbx {

template <class MulOp, class T, class M>
Matrix<T, M> kron(const Matrix<T, M>& A, const Matrix<T, M>& B) {
  // Guard dimension overflow: result dims must fit in Index.
  const auto nr = static_cast<unsigned __int128>(A.nrows()) * B.nrows();
  const auto nc = static_cast<unsigned __int128>(A.ncols()) * B.ncols();
  GBX_CHECK_VALUE(nr <= kIndexMax && nc <= kIndexMax,
                  "kron result dimensions overflow Index");

  const Dcsr<T>& sa = A.storage();
  const Dcsr<T>& sb = B.storage();
  std::vector<Entry<T>> ent;
  ent.reserve(sa.nnz() * sb.nnz());
  sa.for_each([&](Index ia, Index ja, T va) {
    sb.for_each([&](Index ib, Index jb, T vb) {
      ent.push_back({ia * B.nrows() + ib, ja * B.ncols() + jb,
                     MulOp::apply(va, vb)});
    });
  });
  sort_entries(ent);
  return Matrix<T, M>::adopt(static_cast<Index>(nr), static_cast<Index>(nc),
                             Dcsr<T>::from_sorted_unique(ent));
}

}  // namespace gbx
