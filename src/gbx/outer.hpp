// gbx/outer.hpp — sparse outer product: C = u ⊗ v^T.
//
// The rank-1 building block (gravity background models are outer products
// of the traffic marginals). nnz(C) = nvals(u) * nvals(v); hypersparse
// output regardless of vector dimensions.
#pragma once

#include "gbx/matrix.hpp"
#include "gbx/vector.hpp"

namespace gbx {

template <class MulOp, class T>
Matrix<T> outer(const SparseVector<T>& u, const SparseVector<T>& v) {
  auto ui = u.indices();
  auto uv = u.values();
  auto vi = v.indices();
  auto vv = v.values();

  std::vector<Entry<T>> ent;
  ent.reserve(ui.size() * vi.size());
  for (std::size_t a = 0; a < ui.size(); ++a)
    for (std::size_t b = 0; b < vi.size(); ++b)
      ent.push_back({ui[a], vi[b], MulOp::apply(uv[a], vv[b])});
  // u rows ascending, v cols ascending per row: already sorted.
  return Matrix<T>::adopt(u.size(), v.size(),
                          Dcsr<T>::from_sorted_unique(ent));
}

/// Extract one row of A as a sparse vector (GrB_Col_extract of A^T row).
template <class T, class M>
SparseVector<T> extract_row(const Matrix<T, M>& A, Index row) {
  GBX_CHECK_INDEX(row < A.nrows(), "extract_row out of bounds");
  const Dcsr<T>& s = A.storage();
  auto rows = s.rows();
  SparseVector<T> out(A.ncols());
  auto it = std::lower_bound(rows.begin(), rows.end(), row);
  if (it == rows.end() || *it != row) return out;
  const std::size_t k = static_cast<std::size_t>(it - rows.begin());
  std::vector<Index> idx(s.cols().begin() + static_cast<std::ptrdiff_t>(s.ptr()[k]),
                         s.cols().begin() + static_cast<std::ptrdiff_t>(s.ptr()[k + 1]));
  std::vector<T> val(s.vals().begin() + static_cast<std::ptrdiff_t>(s.ptr()[k]),
                     s.vals().begin() + static_cast<std::ptrdiff_t>(s.ptr()[k + 1]));
  out.adopt(std::move(idx), std::move(val));
  return out;
}

/// Extract one column of A as a sparse vector. O(nnz) scan (DCSR is
/// row-oriented); for column-heavy workloads transpose once instead.
template <class T, class M>
SparseVector<T> extract_col(const Matrix<T, M>& A, Index col) {
  GBX_CHECK_INDEX(col < A.ncols(), "extract_col out of bounds");
  std::vector<Index> idx;
  std::vector<T> val;
  A.for_each([&](Index i, Index j, T v) {
    if (j == col) {
      idx.push_back(i);
      val.push_back(v);
    }
  });
  SparseVector<T> out(A.nrows());
  out.adopt(std::move(idx), std::move(val));
  return out;
}

/// Remove one entry (GrB_Matrix_removeElement). No-op if absent.
template <class T, class M>
void remove_element(Matrix<T, M>& A, Index row, Index col) {
  GBX_CHECK_INDEX(row < A.nrows() && col < A.ncols(),
                  "remove_element out of bounds");
  const Dcsr<T>& s = A.storage();  // fold pending first
  if (!s.get(row, col)) return;
  std::vector<Entry<T>> keep;
  keep.reserve(s.nnz() - 1);
  s.for_each([&](Index i, Index j, T v) {
    if (i != row || j != col) keep.push_back({i, j, v});
  });
  A = Matrix<T, M>::adopt(A.nrows(), A.ncols(),
                          Dcsr<T>::from_sorted_unique(keep));
}

}  // namespace gbx
