// gbx/index_apply.hpp — index-aware value transforms (GrB_IndexUnaryOp).
//
// apply_index computes C(i,j) = f(i, j, A(i,j)) over the stored pattern.
// Covers the GraphBLAS index-unary built-ins (rowindex, colindex,
// diagindex) plus arbitrary user transforms; selection by index predicate
// lives in select.hpp.
#pragma once

#include "gbx/matrix.hpp"

namespace gbx {

/// C(i,j) = f(i, j, A(i,j)); structure preserved exactly.
template <class T, class M, class F>
Matrix<T, M> apply_index(const Matrix<T, M>& A, F&& f) {
  const Dcsr<T>& s = A.storage();
  std::vector<Entry<T>> ent;
  ent.reserve(s.nnz());
  s.for_each([&](Index i, Index j, T v) { ent.push_back({i, j, f(i, j, v)}); });
  return Matrix<T, M>::adopt(A.nrows(), A.ncols(),
                             Dcsr<T>::from_sorted_unique(ent));
}

/// C(i,j) = i (row index as value, GrB_ROWINDEX). Values must fit T.
template <class T, class M>
Matrix<T, M> rowindex(const Matrix<T, M>& A) {
  return apply_index(A, [](Index i, Index, T) { return static_cast<T>(i); });
}

/// C(i,j) = j (GrB_COLINDEX).
template <class T, class M>
Matrix<T, M> colindex(const Matrix<T, M>& A) {
  return apply_index(A, [](Index, Index j, T) { return static_cast<T>(j); });
}

/// C(i,j) = j - i as a signed offset cast into T (GrB_DIAGINDEX).
template <class T, class M>
Matrix<T, M> diagindex(const Matrix<T, M>& A) {
  return apply_index(A, [](Index i, Index j, T) {
    return static_cast<T>(static_cast<double>(static_cast<__int128>(j) -
                                              static_cast<__int128>(i)));
  });
}

}  // namespace gbx
