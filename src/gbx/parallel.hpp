// gbx/parallel.hpp — small OpenMP utilities shared by gbx kernels.
#pragma once

#include <omp.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "gbx/types.hpp"

namespace gbx {

/// Number of threads gbx kernels will use (the OpenMP max).
inline int max_threads() { return omp_get_max_threads(); }

/// Split [0, n) into at most `parts` contiguous blocks of near-equal size.
/// Returns the boundary offsets (size parts+1, first 0, last n). Fewer
/// blocks are produced when n < parts.
inline std::vector<Offset> block_ranges(Offset n, int parts) {
  if (parts < 1) parts = 1;
  auto p = static_cast<Offset>(parts);
  if (p > n && n > 0) p = n;
  if (n == 0) p = 1;
  std::vector<Offset> bounds(p + 1);
  for (Offset i = 0; i <= p; ++i) bounds[i] = n * i / p;
  return bounds;
}

/// Exclusive prefix sum in place: v[i] becomes sum of original v[0..i).
/// Returns the total. Serial — callers use it on per-thread histograms
/// whose length is O(threads), not O(n).
template <class V>
typename V::value_type exclusive_scan_inplace(V& v) {
  typename V::value_type sum{};
  for (auto& x : v) {
    auto next = static_cast<typename V::value_type>(sum + x);
    x = sum;
    sum = next;
  }
  return sum;
}

}  // namespace gbx
