// gbx/serialize.hpp — binary (de)serialization of hypersparse matrices.
//
// A compact, versioned little-endian container (GxB_Matrix_serialize
// analogue): header (magic, version, value-type tag, dims, counts)
// followed by the raw DCSR arrays. Pending tuples are folded before
// writing, so a serialized matrix is always in canonical form and
// round-trips bit-exactly.
#pragma once

#include <cstring>
#include <istream>
#include <ostream>

#include "gbx/matrix.hpp"
#include "gbx/view.hpp"

namespace gbx {

namespace detail {

inline constexpr std::uint64_t kSerializeMagic = 0x48484742'58303031ull;  // "HHGBX001"
inline constexpr std::uint32_t kSerializeVersion = 1;

/// Value-type tag for header validation across round-trips.
template <class T>
constexpr std::uint32_t type_tag() {
  if constexpr (std::is_same_v<T, double>) return 1;
  else if constexpr (std::is_same_v<T, float>) return 2;
  else if constexpr (std::is_same_v<T, std::int64_t>) return 3;
  else if constexpr (std::is_same_v<T, std::uint64_t>) return 4;
  else if constexpr (std::is_same_v<T, std::int32_t>) return 5;
  else if constexpr (std::is_same_v<T, std::uint32_t>) return 6;
  else return 1000 + sizeof(T);  // user types: size-checked only
}

template <class T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <class T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  GBX_CHECK(is.good(), "serialize: truncated stream");
  return v;
}

template <class T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_pod<std::uint64_t>(os, v.size());
  if (!v.empty())
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <class T>
std::vector<T> read_vec(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  // Grow incrementally so a corrupted length field cannot trigger an
  // enormous up-front allocation: memory stays bounded by the bytes the
  // stream actually delivers.
  constexpr std::uint64_t kChunkElems = (1u << 20);
  std::vector<T> v;
  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t take = std::min<std::uint64_t>(kChunkElems, n - done);
    v.resize(static_cast<std::size_t>(done + take));
    is.read(reinterpret_cast<char*>(v.data() + done),
            static_cast<std::streamsize>(take * sizeof(T)));
    GBX_CHECK(is.good(), "serialize: truncated array");
    done += take;
  }
  return v;
}

/// Shared writer: header + raw DCSR arrays for a materialized block.
template <class T>
void serialize_dcsr(std::ostream& os, Index nrows, Index ncols,
                    const Dcsr<T>& s) {
  write_pod(os, kSerializeMagic);
  write_pod(os, kSerializeVersion);
  write_pod(os, type_tag<T>());
  write_pod<std::uint32_t>(os, 0);  // reserved/padding
  write_pod<Index>(os, nrows);
  write_pod<Index>(os, ncols);
  write_vec(os, std::vector<Index>(s.rows().begin(), s.rows().end()));
  write_vec(os, std::vector<Offset>(s.ptr().begin(), s.ptr().end()));
  write_vec(os, std::vector<Index>(s.cols().begin(), s.cols().end()));
  write_vec(os, std::vector<T>(s.vals().begin(), s.vals().end()));
  GBX_CHECK(os.good(), "serialize: write failure");
}

/// Row-subrange writer: the same container as serialize_dcsr, holding
/// only the rows in positions [row_begin, row_end) of s.rows() (ptr
/// rebased to start at 0). Each slice is a complete, independently
/// deserializable matrix of the full dims — the out-of-core tier packs
/// a level into block-sized segments with it, and a reader that
/// plus_assigns the slices back together reconstructs the level
/// bit-exactly (row ranges are disjoint, so no fold reassociation).
template <class T>
void serialize_rows(std::ostream& os, Index nrows, Index ncols,
                    const Dcsr<T>& s, std::size_t row_begin,
                    std::size_t row_end) {
  GBX_CHECK_VALUE(row_begin <= row_end && row_end <= s.rows().size(),
                  "serialize_rows: row position range out of bounds");
  const Offset p0 = s.ptr()[row_begin];
  const Offset p1 = s.ptr()[row_end];
  write_pod(os, kSerializeMagic);
  write_pod(os, kSerializeVersion);
  write_pod(os, type_tag<T>());
  write_pod<std::uint32_t>(os, 0);  // reserved/padding
  write_pod<Index>(os, nrows);
  write_pod<Index>(os, ncols);
  write_vec(os, std::vector<Index>(s.rows().begin() + row_begin,
                                   s.rows().begin() + row_end));
  std::vector<Offset> ptr(row_end - row_begin + 1);
  for (std::size_t i = 0; i <= row_end - row_begin; ++i)
    ptr[i] = s.ptr()[row_begin + i] - p0;
  write_vec(os, ptr);
  write_vec(os, std::vector<Index>(s.cols().begin() + p0,
                                   s.cols().begin() + p1));
  write_vec(os,
            std::vector<T>(s.vals().begin() + p0, s.vals().begin() + p1));
  GBX_CHECK(os.good(), "serialize: write failure");
}

}  // namespace detail

/// Write A (canonicalized) to the stream.
template <class T, class M>
void serialize(std::ostream& os, const Matrix<T, M>& A) {
  detail::serialize_dcsr(os, A.nrows(), A.ncols(), A.storage());
}

/// Write an immutable view — views are already canonical, so this never
/// touches the owning matrix (live-snapshot checkpoints use it).
template <class T>
void serialize(std::ostream& os, const MatrixView<T>& A) {
  detail::serialize_dcsr(os, A.nrows(), A.ncols(), A.storage());
}

/// Write positions [row_begin, row_end) of s's row list as a complete,
/// independently deserializable matrix of the given dims (the
/// out-of-core tier's segment writer — see detail::serialize_rows).
template <class T>
void serialize_rows(std::ostream& os, Index nrows, Index ncols,
                    const Dcsr<T>& s, std::size_t row_begin,
                    std::size_t row_end) {
  detail::serialize_rows(os, nrows, ncols, s, row_begin, row_end);
}

/// Read a matrix previously written by serialize<T>.
template <class T, class M = PlusMonoid<T>>
Matrix<T, M> deserialize(std::istream& is) {
  GBX_CHECK(detail::read_pod<std::uint64_t>(is) == detail::kSerializeMagic,
            "deserialize: bad magic (not an hhgbx matrix)");
  GBX_CHECK(detail::read_pod<std::uint32_t>(is) == detail::kSerializeVersion,
            "deserialize: unsupported version");
  GBX_CHECK(detail::read_pod<std::uint32_t>(is) == detail::type_tag<T>(),
            "deserialize: value type mismatch");
  (void)detail::read_pod<std::uint32_t>(is);  // reserved
  const Index nrows = detail::read_pod<Index>(is);
  const Index ncols = detail::read_pod<Index>(is);

  auto rows = detail::read_vec<Index>(is);
  auto ptr = detail::read_vec<Offset>(is);
  auto cols = detail::read_vec<Index>(is);
  auto vals = detail::read_vec<T>(is);

  Dcsr<T> d;
  d.mutable_rows() = std::move(rows);
  d.mutable_ptr() = std::move(ptr);
  d.mutable_cols() = std::move(cols);
  d.mutable_vals() = std::move(vals);
  GBX_CHECK(d.validate(), "deserialize: corrupt DCSR payload");
  return Matrix<T, M>::adopt(nrows, ncols, std::move(d));
}

}  // namespace gbx
