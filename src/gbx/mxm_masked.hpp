// gbx/mxm_masked.hpp — masked SpGEMM: C<M> = A ⊕.⊗ B.
//
// The structural mask restricts computation to coordinates present in M,
// the key optimization of SuiteSparse's triangle counting (only wedge
// counts over existing edges are ever computed, turning an O(nnz^2/n)
// product into O(nnz * avg_deg)). The kernel iterates M's pattern and
// evaluates sparse dot products A(i,:) . B(:,j) directly.
#pragma once

#include <unordered_map>

#include "gbx/matrix.hpp"
#include "gbx/semiring.hpp"
#include "gbx/transpose.hpp"
#include "gbx/tsan_omp.hpp"

namespace gbx {

/// C<M> = A ⊕.⊗ B, structural mask (only M's stored coordinates may hold
/// output entries; dot products with empty intersections produce none).
template <class S, class T, class M, class TM, class MM>
Matrix<T, M> mxm_masked(const Matrix<TM, MM>& mask, const Matrix<T, M>& A,
                        const Matrix<T, M>& B) {
  GBX_CHECK_DIM(A.ncols() == B.nrows(), "mxm inner dimension mismatch");
  GBX_CHECK_DIM(mask.nrows() == A.nrows() && mask.ncols() == B.ncols(),
                "mask dimension mismatch");

  // Dot-product formulation needs B by column: use B^T rows.
  auto bt = transpose(B);
  const Dcsr<T>& sa = A.storage();
  const Dcsr<T>& sbt = bt.storage();
  const Dcsr<TM>& sm = mask.storage();

  // Row-id -> hyper position indexes for A and B^T.
  std::unordered_map<Index, std::size_t> arow, btrow;
  arow.reserve(sa.nrows_nonempty() * 2);
  for (std::size_t k = 0; k < sa.nrows_nonempty(); ++k)
    arow.emplace(sa.rows()[k], k);
  btrow.reserve(sbt.nrows_nonempty() * 2);
  for (std::size_t k = 0; k < sbt.nrows_nonempty(); ++k)
    btrow.emplace(sbt.rows()[k], k);

  const std::size_t nmr = sm.nrows_nonempty();
  std::vector<std::vector<Entry<T>>> rowbuf(nmr);

  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(dynamic, 8)
    for (std::size_t mk = 0; mk < nmr; ++mk) {
      const Index i = sm.rows()[mk];
      auto ait = arow.find(i);
      if (ait == arow.end()) continue;
      const std::size_t ka = ait->second;
      const Offset abeg = sa.ptr()[ka], aend = sa.ptr()[ka + 1];

      auto& out = rowbuf[mk];
      for (Offset mp = sm.ptr()[mk]; mp < sm.ptr()[mk + 1]; ++mp) {
        const Index j = sm.cols()[mp];
        auto bit = btrow.find(j);
        if (bit == btrow.end()) continue;
        const std::size_t kb = bit->second;
        // Sparse dot of A(i,:) with B(:,j) == B^T(j,:).
        Offset pa = abeg, pb = sbt.ptr()[kb];
        const Offset eb = sbt.ptr()[kb + 1];
        T acc = S::zero();
        bool any = false;
        while (pa < aend && pb < eb) {
          const Index ca = sa.cols()[pa], cb = sbt.cols()[pb];
          if (ca < cb) ++pa;
          else if (cb < ca) ++pb;
          else {
            acc = S::add(acc, S::mul(sa.vals()[pa++], sbt.vals()[pb++]));
            any = true;
          }
        }
        if (any) out.push_back({i, j, acc});
      }
    }
  }

  std::vector<Entry<T>> ent;
  std::size_t total = 0;
  for (const auto& rb : rowbuf) total += rb.size();
  ent.reserve(total);
  for (auto& rb : rowbuf) ent.insert(ent.end(), rb.begin(), rb.end());
  // Mask rows were walked in order and columns within a mask row are
  // sorted, so ent is already (row, col) sorted.
  return Matrix<T, M>::adopt(A.nrows(), B.ncols(),
                             Dcsr<T>::from_sorted_unique(ent));
}

}  // namespace gbx
