// gbx/thread_annotations.hpp — Clang Thread Safety Analysis surface.
//
// Every hand-rolled locking protocol in the engine (ParallelStream lane
// queues, ShardedHier's freeze slot, the governor registry, tier image
// publication, the BlockStore cache) states invariants of the form "X is
// only touched with M held" or "F must not be called with M held". This
// header turns those comments into compiler-checked contracts: under
// Clang with -Wthread-safety (the HHGBX_THREAD_SAFETY=ON CMake mode,
// enforced as -Werror in CI) the GBX_GUARDED_BY / GBX_REQUIRES /
// GBX_EXCLUDES annotations below are *proved* over every call path at
// compile time — no interleaving luck involved, unlike TSan. Off-Clang
// (GCC, MSVC) every macro expands to nothing and the wrapper types
// behave exactly like the std primitives they wrap.
//
// What the analysis covers vs what TSan covers:
//   * analysis — lock discipline: guarded members never touched without
//     their mutex, REQUIRES contracts hold on every path, scoped locks
//     are released on every exit path, EXCLUDES prevents self-deadlock.
//     Static, exhaustive over the annotated surface, zero runtime cost.
//   * TSan — actual data races on *any* memory, including unannotated
//     state and lock-free protocols (atomics, epoch counters). Dynamic,
//     only over the interleavings a test run happens to execute.
// The two are complements; CI runs both.
//
// Usage rules (see README "Static analysis" for the longer version):
//   * Declare mutexes as gbx::Mutex / gbx::SharedMutex, never raw
//     std::mutex, in annotated subsystems (scripts/lint_invariants.py
//     enforces this for src/hier, src/store, src/net).
//   * Annotate every member the mutex protects with GBX_GUARDED_BY(mu).
//   * Lock with gbx::ScopedLock (exclusive), gbx::ScopedReadLock /
//     gbx::ScopedWriteLock (shared mutexes). Helpers called with the
//     lock already held take GBX_REQUIRES(mu).
//   * Condition waits go through gbx::CondVar::wait(mu) inside an
//     explicit `while (!predicate)` loop — the analysis can follow that
//     (the lock is held before and after), which it cannot do for
//     predicate-lambda overloads.
//   * Single-thread disciplines ("only the event-loop thread calls
//     this") use gbx::ThreadRole — a zero-size capability acquired by
//     the owning thread's entry point, so misuse from another context
//     is a compile error rather than a comment.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Clang implements the attributes unconditionally; keying on __clang__
// alone (rather than the HHGBX_THREAD_SAFETY build mode) means plain
// Clang builds and clang-tidy runs see the annotations too. The build
// mode only adds -Wthread-safety -Werror.
#if defined(__clang__)
#define GBX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GBX_THREAD_ANNOTATION(x)
#endif

#define GBX_CAPABILITY(x) GBX_THREAD_ANNOTATION(capability(x))
#define GBX_SCOPED_CAPABILITY GBX_THREAD_ANNOTATION(scoped_lockable)
#define GBX_GUARDED_BY(x) GBX_THREAD_ANNOTATION(guarded_by(x))
#define GBX_PT_GUARDED_BY(x) GBX_THREAD_ANNOTATION(pt_guarded_by(x))
#define GBX_ACQUIRED_BEFORE(...) \
  GBX_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define GBX_ACQUIRED_AFTER(...) \
  GBX_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define GBX_REQUIRES(...) \
  GBX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GBX_REQUIRES_SHARED(...) \
  GBX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define GBX_ACQUIRE(...) \
  GBX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GBX_ACQUIRE_SHARED(...) \
  GBX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define GBX_RELEASE(...) \
  GBX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GBX_RELEASE_SHARED(...) \
  GBX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define GBX_TRY_ACQUIRE(...) \
  GBX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GBX_TRY_ACQUIRE_SHARED(...) \
  GBX_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define GBX_EXCLUDES(...) GBX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GBX_ASSERT_CAPABILITY(x) GBX_THREAD_ANNOTATION(assert_capability(x))
#define GBX_RETURN_CAPABILITY(x) GBX_THREAD_ANNOTATION(lock_returned(x))
#define GBX_NO_THREAD_SAFETY_ANALYSIS \
  GBX_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gbx {

/// std::mutex with the capability annotations the analysis needs.
/// Same size and cost; libstdc++'s own mutex carries no annotations.
class GBX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GBX_ACQUIRE() { m_.lock(); }
  void unlock() GBX_RELEASE() { m_.unlock(); }
  bool try_lock() GBX_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// std::shared_mutex with shared/exclusive capability annotations.
class GBX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() GBX_ACQUIRE() { m_.lock(); }
  void unlock() GBX_RELEASE() { m_.unlock(); }
  bool try_lock() GBX_TRY_ACQUIRE(true) { return m_.try_lock(); }
  void lock_shared() GBX_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() GBX_RELEASE_SHARED() { m_.unlock_shared(); }
  bool try_lock_shared() GBX_TRY_ACQUIRE_SHARED(true) {
    return m_.try_lock_shared();
  }

 private:
  std::shared_mutex m_;
};

/// RAII exclusive lock on a gbx::Mutex (std::lock_guard shape).
class GBX_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(Mutex& m) GBX_ACQUIRE(m) : m_(m) { m_.lock(); }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;
  ~ScopedLock() GBX_RELEASE() { m_.unlock(); }

 private:
  Mutex& m_;
};

/// RAII exclusive lock on a gbx::SharedMutex (writer side).
class GBX_SCOPED_CAPABILITY ScopedWriteLock {
 public:
  explicit ScopedWriteLock(SharedMutex& m) GBX_ACQUIRE(m) : m_(m) {
    m_.lock();
  }
  ScopedWriteLock(const ScopedWriteLock&) = delete;
  ScopedWriteLock& operator=(const ScopedWriteLock&) = delete;
  ~ScopedWriteLock() GBX_RELEASE() { m_.unlock(); }

 private:
  SharedMutex& m_;
};

/// RAII shared lock on a gbx::SharedMutex (reader side).
class GBX_SCOPED_CAPABILITY ScopedReadLock {
 public:
  explicit ScopedReadLock(SharedMutex& m) GBX_ACQUIRE_SHARED(m) : m_(m) {
    m_.lock_shared();
  }
  ScopedReadLock(const ScopedReadLock&) = delete;
  ScopedReadLock& operator=(const ScopedReadLock&) = delete;
  ~ScopedReadLock() GBX_RELEASE() { m_.unlock_shared(); }

 private:
  SharedMutex& m_;
};

/// Condition variable whose wait() carries the REQUIRES contract. Waits
/// on the wrapped mutex's real std::mutex (zero overhead vs
/// condition_variable_any), adopting and releasing the caller's hold so
/// the analysis sees the lock held across the call — which is also the
/// truth at every observable point. Use inside an explicit predicate
/// loop:
///
///   gbx::ScopedLock lk(mu_);
///   while (!ready_) cv_.wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& m) GBX_REQUIRES(m) {
    std::unique_lock<std::mutex> lk(m.m_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // the caller's ScopedLock still owns the mutex
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& m,
                          const std::chrono::duration<Rep, Period>& d)
      GBX_REQUIRES(m) {
    std::unique_lock<std::mutex> lk(m.m_, std::adopt_lock);
    const auto st = cv_.wait_for(lk, d);
    lk.release();
    return st;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A zero-size capability modelling a single-thread discipline ("only
/// the event-loop thread calls this"). The owning thread's entry point
/// acquires the role (ScopedThreadRole); every function restricted to
/// that thread takes GBX_REQUIRES(role), and members it owns outright
/// are GBX_GUARDED_BY(role). There is no runtime lock — acquire/release
/// compile to nothing — but calling a restricted function from anywhere
/// that has not (transitively) acquired the role is a compile error.
/// Ownership hand-off (e.g. a controller clearing loop-thread state
/// after join()ing the loop) is expressed by acquiring the role
/// explicitly at the hand-off point.
class GBX_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void acquire() GBX_ACQUIRE() {}
  void release() GBX_RELEASE() {}
};

/// RAII acquisition of a ThreadRole for a thread entry point's scope.
class GBX_SCOPED_CAPABILITY ScopedThreadRole {
 public:
  explicit ScopedThreadRole(ThreadRole& r) GBX_ACQUIRE(r) : r_(r) {
    r_.acquire();
  }
  ScopedThreadRole(const ScopedThreadRole&) = delete;
  ScopedThreadRole& operator=(const ScopedThreadRole&) = delete;
  ~ScopedThreadRole() GBX_RELEASE() { r_.release(); }

 private:
  ThreadRole& r_;
};

}  // namespace gbx
