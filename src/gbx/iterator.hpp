// gbx/iterator.hpp — cursor-style entry iteration (GxB_Iterator analogue).
//
// For consumers that need stateful traversal (merging external streams
// against a matrix, pagination in services) rather than the internal
// for_each. Iterates the materialized DCSR in (row, col) order.
//
// The iterator holds a refcounted handle on the block it was created
// from, so it stays valid — and sees a stable image — even if the
// source matrix folds, clears, or is updated mid-iteration (the cursor
// then walks the pre-update value; copy-on-fold keeps the block alive).
#pragma once

#include "gbx/matrix.hpp"

namespace gbx {

template <class T, class M = PlusMonoid<T>>
class MatrixIterator {
 public:
  explicit MatrixIterator(const Matrix<T, M>& A)
      : hold_(A.shared_storage()), s_(hold_.get()) {}

  bool done() const { return k_ >= s_->nrows_nonempty(); }

  Index row() const { return s_->rows()[k_]; }
  Index col() const { return s_->cols()[p_]; }
  T value() const { return s_->vals()[p_]; }

  /// Advance one entry; returns false when exhausted.
  bool next() {
    if (done()) return false;
    if (++p_ >= s_->ptr()[k_ + 1]) {
      ++k_;
      if (done()) return false;
      p_ = s_->ptr()[k_];
    }
    return !done();
  }

  /// Jump to the first entry with row id >= target. Returns true if the
  /// iterator lands on a valid entry.
  bool seek_row(Index target) {
    auto rows = s_->rows();
    auto it = std::lower_bound(rows.begin(), rows.end(), target);
    k_ = static_cast<std::size_t>(it - rows.begin());
    if (done()) return false;
    p_ = s_->ptr()[k_];
    return true;
  }

  /// Position on the very first entry (call before reading on a fresh
  /// iterator — construction leaves it positioned there already; this is
  /// for reuse).
  void rewind() {
    k_ = 0;
    p_ = s_->nrows_nonempty() ? s_->ptr()[0] : 0;
  }

 private:
  std::shared_ptr<const Dcsr<T>> hold_;  // pins the block being walked
  const Dcsr<T>* s_;
  std::size_t k_ = 0;
  Offset p_ = 0;
};

}  // namespace gbx
