// gbx/reduce.hpp — monoid reductions of matrices to scalars and vectors.
#pragma once

#include <vector>

#include "gbx/matrix.hpp"
#include "gbx/vector.hpp"

namespace gbx {

/// Fold every stored value into one scalar. Identity for an empty matrix.
template <class MonoidT, class T, class M>
T reduce_scalar(const Matrix<T, M>& A) {
  const Dcsr<T>& s = A.storage();
  const auto nr = s.nrows_nonempty();
  std::vector<T> partial(nr, MonoidT::identity());
#pragma omp parallel for schedule(guided)
  for (std::size_t k = 0; k < nr; ++k) {
    T acc = MonoidT::identity();
    for (Offset p = s.ptr()[k]; p < s.ptr()[k + 1]; ++p)
      acc = MonoidT::apply(acc, s.vals()[p]);
    partial[k] = acc;
  }
  T acc = MonoidT::identity();
  for (const T& v : partial) acc = MonoidT::apply(acc, v);
  return acc;
}

/// Row reduction: out(i) = ⊕_j A(i,j). Result is hypersparse — only rows
/// with entries appear. (GrB_Matrix_reduce to a vector.)
template <class MonoidT, class T, class M>
SparseVector<T> reduce_rows(const Matrix<T, M>& A) {
  const Dcsr<T>& s = A.storage();
  const auto nr = s.nrows_nonempty();
  std::vector<Index> idx(nr);
  std::vector<T> val(nr);
#pragma omp parallel for schedule(guided)
  for (std::size_t k = 0; k < nr; ++k) {
    T acc = MonoidT::identity();
    for (Offset p = s.ptr()[k]; p < s.ptr()[k + 1]; ++p)
      acc = MonoidT::apply(acc, s.vals()[p]);
    idx[k] = s.rows()[k];
    val[k] = acc;
  }
  SparseVector<T> out(A.nrows());
  out.adopt(std::move(idx), std::move(val));
  return out;
}

/// Column reduction: out(j) = ⊕_i A(i,j). Sort-based gather by column.
template <class MonoidT, class T, class M>
SparseVector<T> reduce_cols(const Matrix<T, M>& A) {
  const Dcsr<T>& s = A.storage();
  std::vector<std::pair<Index, T>> acc;
  acc.reserve(s.nnz());
  s.for_each([&](Index, Index j, T v) { acc.emplace_back(j, v); });
  std::sort(acc.begin(), acc.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Index> idx;
  std::vector<T> val;
  for (const auto& [j, v] : acc) {
    if (!idx.empty() && idx.back() == j) {
      val.back() = MonoidT::apply(val.back(), v);
    } else {
      idx.push_back(j);
      val.push_back(v);
    }
  }
  SparseVector<T> out(A.ncols());
  out.adopt(std::move(idx), std::move(val));
  return out;
}

}  // namespace gbx
