// gbx/reduce.hpp — monoid reductions of matrices to scalars and vectors.
#pragma once

#include <vector>

#include "gbx/matrix.hpp"
#include "gbx/tsan_omp.hpp"
#include "gbx/vector.hpp"
#include "gbx/view.hpp"

namespace gbx {

namespace detail {

/// Shared reduction core over raw DCSR storage.
template <class MonoidT, class T>
T reduce_scalar_dcsr(const Dcsr<T>& s) {
  const auto nr = s.nrows_nonempty();
  std::vector<T> partial(nr, MonoidT::identity());
  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(guided)
    for (std::size_t k = 0; k < nr; ++k) {
      T acc = MonoidT::identity();
      for (Offset p = s.ptr()[k]; p < s.ptr()[k + 1]; ++p)
        acc = MonoidT::apply(acc, s.vals()[p]);
      partial[k] = acc;
    }
  }
  T acc = MonoidT::identity();
  for (const T& v : partial) acc = MonoidT::apply(acc, v);
  return acc;
}

}  // namespace detail

/// Fold every stored value into one scalar. Identity for an empty matrix.
template <class MonoidT, class T, class M>
T reduce_scalar(const Matrix<T, M>& A) {
  return detail::reduce_scalar_dcsr<MonoidT>(A.storage());
}

/// Scalar reduction of an immutable view — the query-while-ingest read
/// path: no fold, no copy, safe concurrently with the owner's streaming.
template <class MonoidT, class T>
T reduce_scalar(const MatrixView<T>& A) {
  return detail::reduce_scalar_dcsr<MonoidT>(A.storage());
}

namespace detail {

template <class MonoidT, class T>
SparseVector<T> reduce_rows_dcsr(const Dcsr<T>& s, Index nrows) {
  const auto nr = s.nrows_nonempty();
  std::vector<Index> idx(nr);
  std::vector<T> val(nr);
  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
#pragma omp for schedule(guided)
    for (std::size_t k = 0; k < nr; ++k) {
      T acc = MonoidT::identity();
      for (Offset p = s.ptr()[k]; p < s.ptr()[k + 1]; ++p)
        acc = MonoidT::apply(acc, s.vals()[p]);
      idx[k] = s.rows()[k];
      val[k] = acc;
    }
  }
  SparseVector<T> out(nrows);
  out.adopt(std::move(idx), std::move(val));
  return out;
}

}  // namespace detail

/// Row reduction: out(i) = ⊕_j A(i,j). Result is hypersparse — only rows
/// with entries appear. (GrB_Matrix_reduce to a vector.)
template <class MonoidT, class T, class M>
SparseVector<T> reduce_rows(const Matrix<T, M>& A) {
  return detail::reduce_rows_dcsr<MonoidT>(A.storage(), A.nrows());
}

/// Row reduction of an immutable view (zero-copy read path).
template <class MonoidT, class T>
SparseVector<T> reduce_rows(const MatrixView<T>& A) {
  return detail::reduce_rows_dcsr<MonoidT>(A.storage(), A.nrows());
}

namespace detail {

template <class MonoidT, class T>
SparseVector<T> reduce_cols_dcsr(const Dcsr<T>& s, Index ncols) {
  std::vector<std::pair<Index, T>> acc;
  acc.reserve(s.nnz());
  s.for_each([&](Index, Index j, T v) { acc.emplace_back(j, v); });
  std::sort(acc.begin(), acc.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Index> idx;
  std::vector<T> val;
  for (const auto& [j, v] : acc) {
    if (!idx.empty() && idx.back() == j) {
      val.back() = MonoidT::apply(val.back(), v);
    } else {
      idx.push_back(j);
      val.push_back(v);
    }
  }
  SparseVector<T> out(ncols);
  out.adopt(std::move(idx), std::move(val));
  return out;
}

}  // namespace detail

/// Column reduction: out(j) = ⊕_i A(i,j). Sort-based gather by column.
template <class MonoidT, class T, class M>
SparseVector<T> reduce_cols(const Matrix<T, M>& A) {
  return detail::reduce_cols_dcsr<MonoidT>(A.storage(), A.ncols());
}

/// Column reduction of an immutable view (zero-copy read path).
template <class MonoidT, class T>
SparseVector<T> reduce_cols(const MatrixView<T>& A) {
  return detail::reduce_cols_dcsr<MonoidT>(A.storage(), A.ncols());
}

}  // namespace gbx
