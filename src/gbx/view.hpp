// gbx/view.hpp — shared-immutable views of hypersparse storage.
//
// MatrixView is a read-only handle on a Matrix's compressed DCSR block,
// shared by reference count rather than copied. Publishing a view costs
// one shared_ptr copy; the owning Matrix keeps streaming afterwards
// because its folds *replace* the storage block instead of mutating it
// (copy-on-fold, see Matrix::materialize). This is what makes epoch
// snapshots of the hierarchical cascade O(levels) instead of O(nnz):
// readers hold the frozen blocks, writers move on to fresh ones, and the
// last reference frees each block — the same discipline as an MVCC
// storage engine's immutable version chain.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "gbx/dcsr.hpp"
#include "gbx/types.hpp"

namespace gbx {

template <class T>
class MatrixView {
 public:
  using value_type = T;

  /// Empty view (no storage, zero dimensions). A default-constructed
  /// snapshot slot before its first freeze.
  MatrixView() = default;

  MatrixView(Index nrows, Index ncols, std::shared_ptr<const Dcsr<T>> stor)
      : nrows_(nrows), ncols_(ncols), stor_(std::move(stor)) {}

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }

  /// Exact stored-entry count. Views are always materialized (the fold
  /// happened at publish time), so this is O(1) — no pending buffer.
  std::size_t nvals() const { return stor_ ? stor_->nnz() : 0; }
  bool empty() const { return !stor_ || stor_->empty(); }

  /// Value lookup; nullopt when the coordinate holds no entry.
  std::optional<T> get(Index i, Index j) const {
    if (!stor_) return std::nullopt;
    return stor_->get(i, j);
  }

  /// Row-major traversal f(row, col, value) over the frozen entries.
  template <class F>
  void for_each(F&& f) const {
    if (stor_) stor_->for_each(std::forward<F>(f));
  }

  /// The underlying compressed block (valid as long as any view holds it).
  /// Returns a shared empty block when the view is default-constructed.
  const Dcsr<T>& storage() const {
    if (!stor_) return empty_storage();
    return *stor_;
  }

  /// Refcounted handle, for stitching views into snapshots/checkpoints.
  const std::shared_ptr<const Dcsr<T>>& shared_storage() const { return stor_; }

  /// How many owners currently share this view's block (the view itself
  /// included): the Matrix that published it, sibling views, snapshot
  /// levels. This is the block-identity release signal the memory
  /// governor acts on — a count of 1 means dropping this view really
  /// frees the block, a higher count means the bytes are pinned
  /// elsewhere too. Approximate under concurrent publication (like
  /// use_count itself); exact once the owning matrix has folded past
  /// the block, which is precisely the pinned case eviction targets.
  long block_use_count() const { return stor_ ? stor_.use_count() : 0; }

  bool validate() const { return !stor_ || stor_->validate(); }

  std::size_t memory_bytes() const { return stor_ ? stor_->memory_bytes() : 0; }

 private:
  static const Dcsr<T>& empty_storage() {
    static const Dcsr<T> kEmpty;
    return kEmpty;
  }

  Index nrows_ = 0;
  Index ncols_ = 0;
  std::shared_ptr<const Dcsr<T>> stor_;
};

}  // namespace gbx
