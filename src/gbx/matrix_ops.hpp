// gbx/matrix_ops.hpp — Matrix-level element-wise operations.
#pragma once

#include "gbx/ewise.hpp"
#include "gbx/matrix.hpp"

namespace gbx {

/// C = A ⊕ B (union) over binary op Op.
template <class Op, class T, class M>
Matrix<T, M> ewise_add(const Matrix<T, M>& A, const Matrix<T, M>& B) {
  GBX_CHECK_DIM(A.nrows() == B.nrows() && A.ncols() == B.ncols(),
                "eWiseAdd dimension mismatch");
  return Matrix<T, M>::adopt(A.nrows(), A.ncols(),
                             ewise_add<Op>(A.storage(), B.storage()));
}

/// C = A ⊗ B (intersection) over binary op Op.
template <class Op, class T, class M>
Matrix<T, M> ewise_mult(const Matrix<T, M>& A, const Matrix<T, M>& B) {
  GBX_CHECK_DIM(A.nrows() == B.nrows() && A.ncols() == B.ncols(),
                "eWiseMult dimension mismatch");
  return Matrix<T, M>::adopt(A.nrows(), A.ncols(),
                             ewise_mult<Op>(A.storage(), B.storage()));
}

/// Default-monoid sum: C = A + B over the matrices' fold monoid.
template <class T, class M>
Matrix<T, M> operator+(const Matrix<T, M>& A, const Matrix<T, M>& B) {
  return ewise_add<typename M::op_type>(A, B);
}

}  // namespace gbx
