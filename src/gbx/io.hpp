// gbx/io.hpp — diagnostics and simple interchange I/O.
//
// Human-readable printing for small matrices plus a MatrixMarket-style
// coordinate text format (sufficient for examples and test fixtures; the
// dialect is the standard "%%MatrixMarket matrix coordinate real general"
// header with 1-based coordinates).
#pragma once

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "gbx/matrix.hpp"

namespace gbx {

/// Compact one-line summary: dims, nvals, pending, memory.
template <class T, class M>
std::string describe(const Matrix<T, M>& A) {
  std::ostringstream os;
  os << "Matrix<" << type_name<T>() << "> " << A.nrows() << "x" << A.ncols()
     << " nvals_bound=" << A.nvals_bound() << " pending=" << A.pending_count()
     << " mem=" << A.memory_bytes() << "B";
  return os.str();
}

/// Print entries as "(i, j) = v" lines (folds pending). Intended for
/// small matrices in examples/tests.
template <class T, class M>
void print(std::ostream& os, const Matrix<T, M>& A,
           std::size_t max_entries = 64) {
  os << describe(A) << "\n";
  std::size_t n = 0;
  A.for_each([&](Index i, Index j, T v) {
    if (n < max_entries) os << "  (" << i << ", " << j << ") = " << v << "\n";
    else if (n == max_entries) os << "  ...\n";
    ++n;
  });
}

/// Write MatrixMarket coordinate format (1-based).
template <class T, class M>
void write_matrix_market(std::ostream& os, const Matrix<T, M>& A) {
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << A.nrows() << ' ' << A.ncols() << ' ' << A.nvals() << '\n';
  A.for_each([&](Index i, Index j, T v) {
    os << (i + 1) << ' ' << (j + 1) << ' ' << +v << '\n';
  });
}

/// Read MatrixMarket coordinate format (1-based, real or integer general).
template <class T, class M = PlusMonoid<T>>
Matrix<T, M> read_matrix_market(std::istream& is) {
  std::string line;
  // Skip the banner and comments.
  do {
    GBX_CHECK(static_cast<bool>(std::getline(is, line)),
              "MatrixMarket: missing size line");
  } while (!line.empty() && line[0] == '%');
  std::istringstream hdr(line);
  Index nr = 0, nc = 0;
  std::size_t nnz = 0;
  GBX_CHECK(static_cast<bool>(hdr >> nr >> nc >> nnz),
            "MatrixMarket: malformed size line");
  Matrix<T, M> A(nr, nc);
  for (std::size_t k = 0; k < nnz; ++k) {
    Index i, j;
    double v;
    GBX_CHECK(static_cast<bool>(is >> i >> j >> v),
              "MatrixMarket: truncated entry list");
    GBX_CHECK_VALUE(i >= 1 && j >= 1, "MatrixMarket coordinates are 1-based");
    A.set_element(i - 1, j - 1, static_cast<T>(v));
  }
  A.materialize();
  return A;
}

}  // namespace gbx
