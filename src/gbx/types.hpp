// gbx/types.hpp — fundamental index and size types of the gbx library.
//
// Indices are 64-bit so that a full IPv6 traffic matrix (2^64 x 2^64) is
// addressable. All storage formats are *hypersparse*: memory is
// proportional to the number of stored entries, never to the dimensions,
// so enormous index spaces cost nothing.
#pragma once

#include <cstdint>
#include <limits>
#include <type_traits>

namespace gbx {

/// Row/column index. The full 2^64 space is valid; kIndexMax itself is
/// reserved as an "invalid" sentinel inside kernels.
using Index = std::uint64_t;

/// Offset into entry arrays (an entry count fits in 64 bits).
using Offset = std::uint64_t;

inline constexpr Index kIndexMax = std::numeric_limits<Index>::max();

/// Dimension constant for IPv4 traffic matrices (2^32).
inline constexpr Index kIPv4Dim = Index{1} << 32;

/// Dimension constant for IPv6 traffic matrices (2^64 - 1; the true 2^64
/// is not representable as a dimension, matching GraphBLAS GrB_INDEX_MAX
/// conventions).
inline constexpr Index kIPv6Dim = kIndexMax;

/// Trait: value types storable in gbx containers. Mirrors the GraphBLAS
/// built-in types (bool, intN, uintN, fp32/64); extended types just need
/// to be trivially copyable and default constructible.
template <class T>
inline constexpr bool is_storable_v =
    std::is_trivially_copyable_v<T> && std::is_default_constructible_v<T>;

/// Human-readable type names for diagnostics.
template <class T>
constexpr const char* type_name() {
  if constexpr (std::is_same_v<T, bool>) return "bool";
  else if constexpr (std::is_same_v<T, std::int8_t>) return "int8";
  else if constexpr (std::is_same_v<T, std::uint8_t>) return "uint8";
  else if constexpr (std::is_same_v<T, std::int16_t>) return "int16";
  else if constexpr (std::is_same_v<T, std::uint16_t>) return "uint16";
  else if constexpr (std::is_same_v<T, std::int32_t>) return "int32";
  else if constexpr (std::is_same_v<T, std::uint32_t>) return "uint32";
  else if constexpr (std::is_same_v<T, std::int64_t>) return "int64";
  else if constexpr (std::is_same_v<T, std::uint64_t>) return "uint64";
  else if constexpr (std::is_same_v<T, float>) return "fp32";
  else if constexpr (std::is_same_v<T, double>) return "fp64";
  else return "user";
}

}  // namespace gbx
