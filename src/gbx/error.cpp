#include "gbx/error.hpp"

#include <cstring>
#include <sstream>

namespace gbx::detail {

[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  // Keep only the basename so messages are stable across build roots.
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::ostringstream os;
  os << "gbx: " << msg << " [check `" << expr << "` failed at " << base << ':'
     << line << ']';
  const std::string what = os.str();
  if (std::strcmp(kind, "DimensionMismatch") == 0) throw DimensionMismatch(what);
  if (std::strcmp(kind, "IndexOutOfBounds") == 0) throw IndexOutOfBounds(what);
  if (std::strcmp(kind, "InvalidValue") == 0) throw InvalidValue(what);
  throw Error(what);
}

}  // namespace gbx::detail
