// gbx/mxm.hpp — sparse matrix-matrix multiply over a semiring.
//
// Gustavson's algorithm with a per-row hash accumulator, parallel over
// the non-empty rows of A. Rows of B are located through a one-time hash
// index of B's hyper row list, so the inner loop costs O(1) per term —
// this is the hypersparse analogue of SuiteSparse's hash SpGEMM.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "gbx/matrix.hpp"
#include "gbx/semiring.hpp"
#include "gbx/tsan_omp.hpp"

namespace gbx {

/// C = A ⊕.⊗ B over semiring S.
template <class S, class T, class M>
Matrix<T, M> mxm(const Matrix<T, M>& A, const Matrix<T, M>& B) {
  GBX_CHECK_DIM(A.ncols() == B.nrows(), "mxm inner dimension mismatch");
  const Dcsr<T>& sa = A.storage();
  const Dcsr<T>& sb = B.storage();

  // Hash index over B's stored rows: row id -> position in sb.rows().
  std::unordered_map<Index, std::size_t> brow;
  brow.reserve(sb.nrows_nonempty() * 2);
  for (std::size_t k = 0; k < sb.nrows_nonempty(); ++k)
    brow.emplace(sb.rows()[k], k);

  const std::size_t nra = sa.nrows_nonempty();
  // Per-output-row results, assembled independently then concatenated.
  std::vector<std::vector<std::pair<Index, T>>> rowbuf(nra);

  GBX_OMP_CAPTURE_HANDOFF;
#pragma omp parallel
  {
    gbx::OmpRegionGuard tsan_region;
    std::unordered_map<Index, T> acc;
#pragma omp for schedule(dynamic, 16)
    for (std::size_t k = 0; k < nra; ++k) {
      acc.clear();
      for (Offset p = sa.ptr()[k]; p < sa.ptr()[k + 1]; ++p) {
        const Index kk = sa.cols()[p];
        const T va = sa.vals()[p];
        auto it = brow.find(kk);
        if (it == brow.end()) continue;
        const std::size_t kb = it->second;
        for (Offset q = sb.ptr()[kb]; q < sb.ptr()[kb + 1]; ++q) {
          const T prod = S::mul(va, sb.vals()[q]);
          auto [slot, fresh] = acc.try_emplace(sb.cols()[q], prod);
          if (!fresh) slot->second = S::add(slot->second, prod);
        }
      }
      if (acc.empty()) continue;
      auto& out = rowbuf[k];
      out.assign(acc.begin(), acc.end());
      std::sort(out.begin(), out.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
    }
  }

  // Assemble the DCSR output.
  Dcsr<T> c;
  auto& rows = c.mutable_rows();
  auto& ptr = c.mutable_ptr();
  auto& cols = c.mutable_cols();
  auto& vals = c.mutable_vals();
  ptr.assign(1, 0);
  std::size_t total = 0;
  for (const auto& rb : rowbuf) total += rb.size();
  cols.reserve(total);
  vals.reserve(total);
  for (std::size_t k = 0; k < nra; ++k) {
    if (rowbuf[k].empty()) continue;
    rows.push_back(sa.rows()[k]);
    for (const auto& [j, v] : rowbuf[k]) {
      cols.push_back(j);
      vals.push_back(v);
    }
    ptr.push_back(cols.size());
  }
  return Matrix<T, M>::adopt(A.nrows(), B.ncols(), std::move(c));
}

}  // namespace gbx
