// gbx/error.hpp — error handling for the gbx GraphBLAS-style kernel library.
//
// All precondition violations (dimension mismatch, domain errors, bad
// arguments) throw gbx::Error carrying the failing expression and location.
// Kernels never silently truncate or wrap.
#pragma once

#include <stdexcept>
#include <string>

namespace gbx {

/// Exception type thrown on any API misuse or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Dimension mismatch between operands (GrB_DIMENSION_MISMATCH analogue).
class DimensionMismatch : public Error {
 public:
  explicit DimensionMismatch(const std::string& what) : Error(what) {}
};

/// Index outside the matrix/vector domain (GrB_INDEX_OUT_OF_BOUNDS analogue).
class IndexOutOfBounds : public Error {
 public:
  explicit IndexOutOfBounds(const std::string& what) : Error(what) {}
};

/// Invalid argument value (GrB_INVALID_VALUE analogue).
class InvalidValue : public Error {
 public:
  explicit InvalidValue(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg);
}  // namespace detail

}  // namespace gbx

/// Precondition check: throws gbx::Error subclasses with context on failure.
/// KIND is one of Error, DimensionMismatch, IndexOutOfBounds, InvalidValue.
#define GBX_CHECK_KIND(expr, KIND, msg)                                     \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::gbx::detail::throw_check_failure(#KIND, #expr, __FILE__, __LINE__, \
                                         (msg));                            \
    }                                                                       \
  } while (0)

#define GBX_CHECK(expr, msg) GBX_CHECK_KIND(expr, Error, msg)
#define GBX_CHECK_DIM(expr, msg) GBX_CHECK_KIND(expr, DimensionMismatch, msg)
#define GBX_CHECK_INDEX(expr, msg) GBX_CHECK_KIND(expr, IndexOutOfBounds, msg)
#define GBX_CHECK_VALUE(expr, msg) GBX_CHECK_KIND(expr, InvalidValue, msg)
