// store/published_rates.hpp — published reference series for Fig. 2.
//
// Fig. 2 of the paper overlays previously *published* aggregate update
// rates from other systems. We do not (and cannot) re-run Oracle, SciDB
// or CrateDB; instead the figure bench reprints these literature values
// as clearly-labelled reference series, exactly as the paper's figure
// overlays them. Sources are the paper's own citations.
#pragma once

#include <array>
#include <cmath>
#include <string_view>

namespace store {

struct PublishedPoint {
  double servers;             ///< x-axis of Fig. 2
  double updates_per_second;  ///< y-axis of Fig. 2
};

struct PublishedSeries {
  std::string_view name;
  std::string_view source;  ///< citation in the paper's reference list
  // Two points spanning the line as drawn in Fig. 2 (log-log).
  std::array<PublishedPoint, 2> span;
};

/// The non-measured overlay series of Fig. 2, in descending headline rate.
inline constexpr std::array<PublishedSeries, 6> kPublishedSeries{{
    {"Hierarchical D4M",
     "Kepner et al., HPEC 2019 (1.9e9 updates/s) [24]; Reuther et al. 2018 [19]",
     {{{1, 2.0e6}, {1100, 1.9e9}}}},
    {"D4M",
     "Gadepally et al., HPEC 2018 [18]",
     {{{1, 8.0e5}, {1100, 2.8e8}}}},
    {"Accumulo D4M",
     "Kepner et al., HPEC 2014 (1.0e8 inserts/s on 216 nodes) [25]",
     {{{1, 6.0e5}, {216, 1.0e8}}}},
    {"SciDB D4M",
     "Samsi et al., HPEC 2016 [26]",
     {{{1, 3.0e5}, {100, 3.0e7}}}},
    {"Accumulo",
     "Sen et al., BigData Congress 2013 [27]",
     {{{1, 4.0e5}, {100, 4.0e7}}}},
    {"CrateDB",
     "CrateDB big-cluster ingest blog, 2016 [28]",
     {{{1, 2.0e5}, {32, 6.4e6}}}},
}};

/// Oracle TPC-C is drawn in Fig. 2 as a single-system reference level
/// (order 1e6 updates/s); top published tpmC results correspond to
/// roughly this insert rate.
inline constexpr PublishedSeries kOracleTpcc{
    "Oracle (TPC-C)",
    "TPC-C published results (paper Fig. 2 overlay)",
    {{{1, 5.0e5}, {100, 2.0e6}}}};

/// Log-log interpolate/extrapolate a published series at `servers`.
inline double published_rate_at(const PublishedSeries& s, double servers) {
  const auto [x0, y0] = s.span[0];
  const auto [x1, y1] = s.span[1];
  if (x0 == x1) return y0;
  const double lx0 = std::log(x0), lx1 = std::log(x1);
  const double ly0 = std::log(y0), ly1 = std::log(y1);
  const double t = (std::log(servers) - lx0) / (lx1 - lx0);
  return std::exp(ly0 + t * (ly1 - ly0));
}

}  // namespace store
