// store/wal.hpp — write-ahead log model + replayable record log.
//
// WriteAheadLog: both database baselines pay a per-operation log append
// before touching their index, as Accumulo tablet servers and OLTP
// engines do. The log is an in-memory byte buffer (no fsync — we model
// the CPU/memory cost of the write path, not disk latency; the paper's
// comparison is against in-memory-buffered ingest too). The buffer
// recycles at `capacity` to bound footprint, counting total bytes logged.
//
// RecordLogWriter/RecordLogReader: a durable, *replayable* framed log
// for crash recovery (hier::recover). Each record is
//   [magic u64][epoch u64][size u64][payload bytes][fnv1a-64 of payload]
// so a reader can (a) skip records by epoch without deserializing the
// payload, (b) detect a torn tail — a crash mid-append leaves a frame
// the checksum/size cannot complete — and (c) reject bit corruption.
// Epoch semantics (which records may follow which) belong to the
// replayer, not the container.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <vector>

#include "gbx/error.hpp"
#include "store/kv_types.hpp"

namespace store {

class WriteAheadLog {
 public:
  explicit WriteAheadLog(std::size_t capacity_bytes = 64u << 20)
      : cap_(capacity_bytes) {
    buf_.reserve(cap_);
  }

  /// Append one record (serialized key, value, record header).
  void append(const Key& k, Value v) {
    // 8-byte LSN header + key + value, the shape of a real log record.
    const std::uint64_t lsn = ++lsn_;
    write_raw(&lsn, sizeof lsn);
    write_raw(&k, sizeof k);
    write_raw(&v, sizeof v);
  }

  std::uint64_t records() const { return lsn_; }
  std::uint64_t bytes_logged() const { return total_; }

 private:
  void write_raw(const void* p, std::size_t n) {
    if (buf_.size() + n > cap_) buf_.clear();  // recycle (checkpoint model)
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
    total_ += n;
  }

  std::size_t cap_;
  std::vector<std::byte> buf_;
  std::uint64_t lsn_ = 0;
  std::uint64_t total_ = 0;
};

namespace detail {

inline constexpr std::uint64_t kRecordMagic = 0x48485741'4C303031ull;  // "HHWAL001"

inline std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x00000100000001B3ull;
  }
  return h;
}

}  // namespace detail

/// Appends framed, epoch-stamped, checksummed records to a stream (a
/// file in real deployments; tests use stringstreams). One writer per
/// stream; flush/fsync policy is the caller's.
class RecordLogWriter {
 public:
  explicit RecordLogWriter(std::ostream& os) : os_(&os) {}

  void append(std::uint64_t epoch, const void* data, std::size_t size) {
    write_pod(detail::kRecordMagic);
    write_pod(epoch);
    write_pod(static_cast<std::uint64_t>(size));
    os_->write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    write_pod(detail::fnv1a(data, size));
    GBX_CHECK(os_->good(), "record log: write failure");
    ++records_;
    bytes_ += 4 * sizeof(std::uint64_t) + size;
  }

  std::uint64_t records() const { return records_; }
  std::uint64_t bytes_logged() const { return bytes_; }

 private:
  template <class T>
  void write_pod(const T& v) {
    os_->write(reinterpret_cast<const char*>(&v), sizeof v);
  }

  std::ostream* os_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

/// One record read back from a RecordLog stream.
struct LogRecord {
  std::uint64_t epoch = 0;
  std::vector<std::byte> payload;
};

/// Sequential reader over a RecordLog stream. next() returns nullopt at
/// a clean end-of-log (stream exhausted exactly at a frame boundary)
/// and throws gbx::Error on a torn tail (truncated frame), a corrupt
/// frame magic, or a checksum mismatch.
class RecordLogReader {
 public:
  explicit RecordLogReader(std::istream& is) : is_(&is) {}

  std::optional<LogRecord> next() {
    std::uint64_t magic = 0;
    is_->read(reinterpret_cast<char*>(&magic), sizeof magic);
    if (is_->gcount() == 0 && is_->eof()) return std::nullopt;  // clean end
    GBX_CHECK(static_cast<std::size_t>(is_->gcount()) == sizeof magic,
              "record log: torn record header");
    GBX_CHECK(magic == detail::kRecordMagic,
              "record log: bad record magic (corrupt or misaligned log)");

    LogRecord rec;
    rec.epoch = read_pod("torn record header");
    const std::uint64_t size = read_pod("torn record header");
    // Grow incrementally so a corrupted size field cannot trigger an
    // enormous up-front allocation (same discipline as gbx::read_vec).
    constexpr std::uint64_t kChunk = 1u << 20;
    std::uint64_t done = 0;
    while (done < size) {
      const std::uint64_t take = std::min<std::uint64_t>(kChunk, size - done);
      rec.payload.resize(static_cast<std::size_t>(done + take));
      is_->read(reinterpret_cast<char*>(rec.payload.data() + done),
                static_cast<std::streamsize>(take));
      GBX_CHECK(static_cast<std::uint64_t>(is_->gcount()) == take,
                "record log: torn record payload");
      done += take;
    }
    const std::uint64_t sum = read_pod("torn record checksum");
    GBX_CHECK(sum == detail::fnv1a(rec.payload.data(), rec.payload.size()),
              "record log: payload checksum mismatch");
    return rec;
  }

 private:
  std::uint64_t read_pod(const char* what) {
    std::uint64_t v = 0;
    is_->read(reinterpret_cast<char*>(&v), sizeof v);
    GBX_CHECK(static_cast<std::size_t>(is_->gcount()) == sizeof v,
              std::string("record log: ") + what);
    return v;
  }

  std::istream* is_;
};

}  // namespace store
