// store/wal.hpp — write-ahead log model + replayable record log.
//
// WriteAheadLog: both database baselines pay a per-operation log append
// before touching their index, as Accumulo tablet servers and OLTP
// engines do. The log is an in-memory byte buffer (no fsync — we model
// the CPU/memory cost of the write path, not disk latency; the paper's
// comparison is against in-memory-buffered ingest too). The buffer
// recycles at `capacity` to bound footprint, counting total bytes logged.
//
// RecordLogWriter/RecordLogReader: a durable, *replayable* framed log
// for crash recovery (hier::recover). Each record is
//   [magic u64][epoch u64][size u64][payload bytes][fnv1a-64 of
//   epoch|size|payload]
// so a reader can (a) skip records by epoch without deserializing the
// payload, (b) detect a torn tail — a crash mid-append leaves a frame
// the checksum/size cannot complete — and (c) reject bit corruption
// anywhere past the magic word, header fields included.
// Epoch semantics (which records may follow which) belong to the
// replayer, not the container.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "gbx/error.hpp"
#include "store/kv_types.hpp"

namespace store {

class WriteAheadLog {
 public:
  explicit WriteAheadLog(std::size_t capacity_bytes = 64u << 20)
      : cap_(capacity_bytes) {
    buf_.reserve(cap_);
  }

  /// Append one record (serialized key, value, record header).
  void append(const Key& k, Value v) {
    // 8-byte LSN header + key + value, the shape of a real log record.
    const std::uint64_t lsn = ++lsn_;
    write_raw(&lsn, sizeof lsn);
    write_raw(&k, sizeof k);
    write_raw(&v, sizeof v);
  }

  std::uint64_t records() const { return lsn_; }
  std::uint64_t bytes_logged() const { return total_; }

 private:
  void write_raw(const void* p, std::size_t n) {
    if (buf_.size() + n > cap_) buf_.clear();  // recycle (checkpoint model)
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
    total_ += n;
  }

  std::size_t cap_;
  std::vector<std::byte> buf_;
  std::uint64_t lsn_ = 0;
  std::uint64_t total_ = 0;
};

namespace detail {

inline constexpr std::uint64_t kRecordMagic = 0x48485741'4C303031ull;  // "HHWAL001"

inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;

/// Chainable fnv1a-64: pass the previous return as `h` to continue the
/// hash across discontiguous regions (header words, then the payload).
inline std::uint64_t fnv1a(const void* data, std::size_t n,
                           std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x00000100000001B3ull;
  }
  return h;
}

/// The frame checksum: fnv1a over epoch | size | payload. Covering the
/// header words (not just the payload) means a bit flip in the epoch or
/// size field of an otherwise-valid frame is classified as corruption
/// instead of silently decoding as a frame that was never written — the
/// "no phantom frames" property the corruption suite asserts.
inline std::uint64_t frame_sum(std::uint64_t epoch, std::uint64_t size,
                               const void* payload) {
  std::uint64_t h = fnv1a(&epoch, sizeof epoch);
  h = fnv1a(&size, sizeof size, h);
  return fnv1a(payload, static_cast<std::size_t>(size), h);
}

}  // namespace detail

/// Appends framed, epoch-stamped, checksummed records to a stream (a
/// file in real deployments; tests use stringstreams). One writer per
/// stream; flush/fsync policy is the caller's.
class RecordLogWriter {
 public:
  explicit RecordLogWriter(std::ostream& os) : os_(&os) {}

  void append(std::uint64_t epoch, const void* data, std::size_t size) {
    write_pod(detail::kRecordMagic);
    write_pod(epoch);
    write_pod(static_cast<std::uint64_t>(size));
    os_->write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    write_pod(detail::frame_sum(epoch, size, data));
    GBX_CHECK(os_->good(), "record log: write failure");
    ++records_;
    bytes_ += 4 * sizeof(std::uint64_t) + size;
  }

  std::uint64_t records() const { return records_; }
  std::uint64_t bytes_logged() const { return bytes_; }

 private:
  template <class T>
  void write_pod(const T& v) {
    os_->write(reinterpret_cast<const char*>(&v), sizeof v);
  }

  std::ostream* os_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

/// One record read back from a RecordLog stream.
struct LogRecord {
  std::uint64_t epoch = 0;
  std::vector<std::byte> payload;
};

/// Incremental (push-style) decoder of the RecordLog frame layout.
/// feed() appends whatever bytes happen to be available — a short read
/// from a nonblocking socket, one stream chunk, a torn file tail — and
/// next() yields complete frames as soon as the buffer covers them:
///
///   kFrame    — one whole record decoded and consumed; call again.
///   kNeedMore — the buffered bytes form a prefix of a valid frame (or
///               nothing at all): not an error, just not done arriving.
///               Only end-of-input turns a non-empty kNeedMore into a
///               torn tail — a judgment that belongs to the caller,
///               because only the caller knows the input ended.
///   kCorrupt  — the bytes can NEVER complete a valid frame: bad magic,
///               checksum mismatch, or a size above max_payload_bytes.
///               The decoder is poisoned; error() says why.
///
/// This is the shared core of RecordLogReader (seekable streams, where
/// kNeedMore at EOF means a torn tail) and the network server's session
/// codec (where kNeedMore means keep the connection reading). Memory
/// discipline: the buffer only ever holds bytes actually fed, so a
/// corrupted size field cannot trigger an enormous up-front allocation.
class RecordFrameDecoder {
 public:
  enum class Status { kNeedMore, kFrame, kCorrupt };

  static constexpr std::uint64_t kNoLimit = ~std::uint64_t{0};

  /// `max_payload_bytes` rejects absurd frame sizes as corruption
  /// instead of buffering toward them forever — servers set a sane cap;
  /// file replay (RecordLogReader) keeps kNoLimit, where an oversized
  /// size field simply runs into end-of-input as a torn tail.
  explicit RecordFrameDecoder(std::uint64_t max_payload_bytes = kNoLimit)
      : max_payload_(max_payload_bytes) {}

  void feed(const void* data, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), b, b + n);
  }

  Status next(LogRecord& out) {
    if (corrupt_) return Status::kCorrupt;
    const std::size_t have = buf_.size() - off_;
    // Magic is checked the moment 8 bytes are buffered (not only once
    // the whole header is), so garbage is classified as corruption, not
    // mistaken for a frame that never finished arriving.
    if (have < sizeof(std::uint64_t)) return Status::kNeedMore;
    if (peek_u64(0) != detail::kRecordMagic)
      return fail("record log: bad record magic (corrupt or misaligned log)");
    if (have < kHeaderBytes) return Status::kNeedMore;
    const std::uint64_t size = peek_u64(2 * sizeof(std::uint64_t));
    if (size > max_payload_)
      return fail("record log: frame size exceeds decoder limit");
    const std::uint64_t total = kHeaderBytes + size + sizeof(std::uint64_t);
    if (have < total) return Status::kNeedMore;

    const std::byte* payload = buf_.data() + off_ + kHeaderBytes;
    const std::uint64_t sum = peek_u64(kHeaderBytes + size);
    // The checksummed region (epoch | size | payload) is contiguous in
    // the buffer, starting right after the magic word.
    if (sum != detail::fnv1a(buf_.data() + off_ + sizeof(std::uint64_t),
                             kHeaderBytes - sizeof(std::uint64_t) +
                                 static_cast<std::size_t>(size)))
      return fail("record log: frame checksum mismatch (header or payload)");
    out.epoch = peek_u64(sizeof(std::uint64_t));
    out.payload.assign(payload, payload + size);
    off_ += static_cast<std::size_t>(total);
    ++frames_;
    // Compact once the consumed prefix dominates, amortized O(1)/byte.
    if (off_ > buf_.size() / 2) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(off_));
      off_ = 0;
    }
    return Status::kFrame;
  }

  /// Undecoded bytes currently buffered. Non-zero after end-of-input
  /// means the input stopped mid-frame (a torn tail).
  std::size_t buffered() const { return buf_.size() - off_; }
  std::uint64_t frames_decoded() const { return frames_; }
  bool corrupt() const { return corrupt_; }
  const std::string& error() const { return error_; }

 private:
  static constexpr std::size_t kHeaderBytes = 3 * sizeof(std::uint64_t);

  std::uint64_t peek_u64(std::size_t at) const {
    std::uint64_t v = 0;
    std::memcpy(&v, buf_.data() + off_ + at, sizeof v);
    return v;
  }

  Status fail(const char* why) {
    corrupt_ = true;
    error_ = why;
    return Status::kCorrupt;
  }

  std::vector<std::byte> buf_;
  std::size_t off_ = 0;  ///< consumed prefix of buf_
  std::uint64_t max_payload_;
  std::uint64_t frames_ = 0;
  bool corrupt_ = false;
  std::string error_;
};

/// Sequential reader over a RecordLog stream. next() returns nullopt at
/// a clean end-of-log (stream exhausted exactly at a frame boundary)
/// and throws gbx::Error on a torn tail (truncated frame), a corrupt
/// frame magic, or a checksum mismatch. Built on RecordFrameDecoder:
/// stream chunks are fed until a frame completes, and only end-of-input
/// with a partial frame buffered is classified as torn — so the same
/// decoder serves nonblocking sockets, where a short read just means
/// "need more bytes", without misclassifying it as corruption.
class RecordLogReader {
 public:
  explicit RecordLogReader(std::istream& is) : is_(&is) {}

  std::optional<LogRecord> next() {
    for (;;) {
      LogRecord rec;
      switch (dec_.next(rec)) {
        case RecordFrameDecoder::Status::kFrame:
          return rec;
        case RecordFrameDecoder::Status::kCorrupt:
          GBX_CHECK(false, dec_.error());
          break;
        case RecordFrameDecoder::Status::kNeedMore:
          break;
      }
      char chunk[1u << 16];
      is_->read(chunk, sizeof chunk);
      const auto got = static_cast<std::size_t>(is_->gcount());
      if (got > 0) {
        dec_.feed(chunk, got);
        continue;
      }
      if (dec_.buffered() == 0) return std::nullopt;  // clean end
      GBX_CHECK(false, "record log: torn record (stream ended mid-frame)");
    }
  }

 private:
  std::istream* is_;
  RecordFrameDecoder dec_;
};

/// Tailing reader over a *growing* RecordLog stream (the replication
/// shipper follows the primary's live WAL file with one of these).
/// Unlike RecordLogReader, end-of-input is never a verdict: a partial
/// frame at the current end just means the writer has not finished
/// appending it yet, so next() returns nullopt ("caught up, poll
/// again") and a later call resumes from the same byte. The stream's
/// eofbit is cleared between polls so an ifstream keeps picking up
/// bytes appended after a previous read hit EOF. Corruption still
/// throws — a bad frame in a live WAL is a real fault, not a race.
class RecordLogTailer {
 public:
  explicit RecordLogTailer(std::istream& is,
                           std::uint64_t max_payload_bytes =
                               RecordFrameDecoder::kNoLimit)
      : is_(&is), dec_(max_payload_bytes) {}

  /// The next complete frame, or nullopt when the readable bytes stop
  /// mid-frame (or exactly at a boundary) — i.e. the tail is caught up.
  std::optional<LogRecord> next() {
    for (;;) {
      LogRecord rec;
      switch (dec_.next(rec)) {
        case RecordFrameDecoder::Status::kFrame:
          return rec;
        case RecordFrameDecoder::Status::kCorrupt:
          GBX_CHECK(false, dec_.error());
          break;
        case RecordFrameDecoder::Status::kNeedMore:
          break;
      }
      if (is_->eof()) is_->clear();  // the file may have grown since
      char chunk[1u << 16];
      is_->read(chunk, sizeof chunk);
      const auto got = static_cast<std::size_t>(is_->gcount());
      if (got == 0) return std::nullopt;  // caught up (for now)
      dec_.feed(chunk, got);
    }
  }

  /// Bytes buffered past the last complete frame (a partial tail).
  std::size_t buffered() const { return dec_.buffered(); }

 private:
  std::istream* is_;
  RecordFrameDecoder dec_;
};

}  // namespace store
