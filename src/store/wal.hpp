// store/wal.hpp — write-ahead log model.
//
// Both database baselines pay a per-operation log append before touching
// their index, as Accumulo tablet servers and OLTP engines do. The log is
// an in-memory byte buffer (no fsync — we model the CPU/memory cost of
// the write path, not disk latency; the paper's comparison is against
// in-memory-buffered ingest too). The buffer recycles at `capacity` to
// bound footprint, counting total bytes logged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "store/kv_types.hpp"

namespace store {

class WriteAheadLog {
 public:
  explicit WriteAheadLog(std::size_t capacity_bytes = 64u << 20)
      : cap_(capacity_bytes) {
    buf_.reserve(cap_);
  }

  /// Append one record (serialized key, value, record header).
  void append(const Key& k, Value v) {
    // 8-byte LSN header + key + value, the shape of a real log record.
    const std::uint64_t lsn = ++lsn_;
    write_raw(&lsn, sizeof lsn);
    write_raw(&k, sizeof k);
    write_raw(&v, sizeof v);
  }

  std::uint64_t records() const { return lsn_; }
  std::uint64_t bytes_logged() const { return total_; }

 private:
  void write_raw(const void* p, std::size_t n) {
    if (buf_.size() + n > cap_) buf_.clear();  // recycle (checkpoint model)
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
    total_ += n;
  }

  std::size_t cap_;
  std::vector<std::byte> buf_;
  std::uint64_t lsn_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace store
