// store/btree_store.hpp — B+tree with WAL (OLTP insert-path model).
//
// Models the per-row cost profile of a transactional RDBMS insert (the
// Oracle TPC-C reference line of Fig. 2): every insert logs to the WAL
// and descends a B+tree to maintain the primary index, splitting nodes
// as it goes. The tree is a genuine order-`kFanout` B+tree with linked
// leaves (ordered scans), not a std::map facade.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "store/kv_types.hpp"
#include "store/wal.hpp"

namespace store {

struct BTreeStats {
  std::uint64_t inserts = 0;
  std::uint64_t leaf_splits = 0;
  std::uint64_t inner_splits = 0;
  std::uint32_t height = 1;
};

class BTreeStore {
 public:
  /// Fanout chosen so a node is a few cache lines, like an in-memory
  /// OLTP index (e.g. 64 keys/node).
  static constexpr std::size_t kFanout = 64;

  explicit BTreeStore(bool enable_wal = true);
  ~BTreeStore();

  BTreeStore(const BTreeStore&) = delete;
  BTreeStore& operator=(const BTreeStore&) = delete;
  BTreeStore(BTreeStore&&) noexcept;
  BTreeStore& operator=(BTreeStore&&) noexcept;

  /// value(key) += v; inserts the key when absent.
  void insert(Key k, Value v);

  std::optional<Value> get(Key k) const;

  std::size_t size() const { return size_; }
  const BTreeStats& stats() const { return stats_; }
  std::uint64_t wal_bytes() const { return wal_.bytes_logged(); }

  /// Ordered scan over linked leaves: f(key, value).
  template <class F>
  void scan(F&& f) const {
    for (const Leaf* l = first_leaf(); l != nullptr; l = leaf_next(l))
      for (std::size_t i = 0; i < leaf_count(l); ++i) {
        auto [k, v] = leaf_entry(l, i);
        f(k, v);
      }
  }

  /// Structural invariants (key order, fill factors, uniform leaf depth).
  bool validate() const;

  // Node types are public so the out-of-line kernels (btree_store.cpp)
  // can define them; they are not part of the supported API surface.
  struct Node;
  struct Leaf;
  struct Inner;

 private:

  // Opaque-ish accessors so scan() can live in the header without
  // exposing node layout.
  const Leaf* first_leaf() const;
  static const Leaf* leaf_next(const Leaf* l);
  static std::size_t leaf_count(const Leaf* l);
  static std::pair<Key, Value> leaf_entry(const Leaf* l, std::size_t i);

  bool wal_enabled_;
  WriteAheadLog wal_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  BTreeStats stats_;
};

}  // namespace store
