// store/failpoint_backend.hpp — fault-injection BlockBackend over the
// process-wide gbx::failpoints() registry.
//
// Wraps any real backend and consults two named failpoints on every
// block I/O:
//
//   "store.block.write"  kError ⇒ throw (ENOSPC); kTorn ⇒ persist only
//                        a `fraction` prefix and report success (torn
//                        write)
//   "store.block.read"   kError ⇒ throw (EIO); kTorn ⇒ silently return
//                        a `fraction` prefix (short read)
//
// This is the PR 7 test-local FailpointBackend generalized: the legacy
// fire-once arming API (fail_write_at etc., absolute 1-based operation
// counts) is kept verbatim so the out-of-core fault suite reads the
// same, but the triggers now live in the shared registry — the same
// machinery that injects EPIPE into net::Client and delayed/stalled
// acks into the replication path, so one failover matrix drives every
// subsystem.
//
// The wrapper also keeps its own absolute writes()/reads() counters
// (the registry counts per-arming, not per-lifetime), which is what the
// "fail N ops from now" arming idiom needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gbx/error.hpp"
#include "gbx/failpoint.hpp"
#include "store/block_store.hpp"

namespace store {

class FailpointBackend final : public BlockBackend {
 public:
  explicit FailpointBackend(std::unique_ptr<BlockBackend> inner)
      : inner_(std::move(inner)) {}

  ~FailpointBackend() override {
    // The names are process-global; don't leak triggers past this rig.
    gbx::failpoints().disarm(kWrite);
    gbx::failpoints().disarm(kRead);
  }

  // --- legacy fire-once arming (absolute op counts, 1-based) ---------------
  void fail_write_at(std::uint64_t n) {
    arm(kWrite, gbx::FailAction::kError, n - writes_);
  }
  void torn_write_at(std::uint64_t n) {
    arm(kWrite, gbx::FailAction::kTorn, n - writes_);
  }
  void fail_read_at(std::uint64_t n) {
    arm(kRead, gbx::FailAction::kError, n - reads_);
  }
  void short_read_at(std::uint64_t n) {
    arm(kRead, gbx::FailAction::kTorn, n - reads_);
  }

  std::uint64_t writes() const { return writes_; }
  std::uint64_t reads() const { return reads_; }
  BlockBackend& inner() { return *inner_; }

  // --- BlockBackend --------------------------------------------------------
  void write(BlockId id, const void* data, std::size_t size) override {
    ++writes_;
    if (gbx::failpoints().armed()) {
      if (auto fp = gbx::failpoints().hit(kWrite)) {
        if (fp->action == gbx::FailAction::kError)
          GBX_CHECK(false, "injected write failure (ENOSPC)");
        if (fp->action == gbx::FailAction::kTorn) {
          inner_->write(id, data,
                        static_cast<std::size_t>(static_cast<double>(size) *
                                                 fp->fraction));
          return;  // tear: keep a prefix, report ok
        }
      }
    }
    inner_->write(id, data, size);
  }

  bool read(BlockId id, std::string& out) override {
    ++reads_;
    gbx::FailAction action{};
    double fraction = 0;
    bool fired = false;
    if (gbx::failpoints().armed()) {
      if (auto fp = gbx::failpoints().hit(kRead)) {
        action = fp->action;
        fraction = fp->fraction;
        fired = true;
      }
    }
    if (fired && action == gbx::FailAction::kError)
      GBX_CHECK(false, "injected read failure (EIO)");
    if (!inner_->read(id, out)) return false;
    if (fired && action == gbx::FailAction::kTorn)
      out.resize(
          static_cast<std::size_t>(static_cast<double>(out.size()) * fraction));
    return true;
  }

  void erase(BlockId id) override { inner_->erase(id); }

  std::vector<std::pair<BlockId, std::uint64_t>> entries() const override {
    return inner_->entries();
  }

 private:
  static constexpr const char* kWrite = "store.block.write";
  static constexpr const char* kRead = "store.block.read";

  void arm(const char* name, gbx::FailAction action, std::uint64_t in_ops) {
    // n < current count would wrap the subtraction to a huge value.
    GBX_CHECK(in_ops > 0 && in_ops < (std::uint64_t{1} << 62),
              "failpoint arming must target a future operation");
    gbx::FailpointSpec spec;
    spec.action = action;
    spec.at_op = in_ops;  // registry op counts reset on arm
    spec.fraction = 0.5;
    spec.max_fires = 1;
    gbx::failpoints().arm(name, spec);
  }

  std::unique_ptr<BlockBackend> inner_;
  std::uint64_t writes_ = 0, reads_ = 0;
};

}  // namespace store
