#include "store/lsm_store.hpp"

#include <algorithm>
#include <queue>

namespace store {

LsmStore::LsmStore(LsmOptions opt) : opt_(opt), wal_() {}

void LsmStore::insert(Key k, Value v) {
  if (opt_.enable_wal) wal_.append(k, v);
  auto [it, fresh] = mem_.try_emplace(k, v);
  if (!fresh) it->second += v;
  ++stats_.inserts;
  if (mem_.size() >= opt_.memtable_limit) flush();
}

LsmStore::Run LsmStore::make_run(std::vector<KV> kv) const {
  Run run{std::move(kv), std::nullopt};
  if (opt_.enable_bloom && !run.kv.empty()) {
    run.bloom.emplace(run.kv.size(), opt_.bloom_fp_rate);
    for (const auto& e : run.kv) run.bloom->add(e.key);
  }
  return run;
}

void LsmStore::flush() {
  if (mem_.empty()) return;
  std::vector<KV> run;
  run.reserve(mem_.size());
  for (const auto& [k, v] : mem_) run.push_back({k, v});
  stats_.entries_written += run.size();
  runs_.push_back(make_run(std::move(run)));
  mem_.clear();
  ++stats_.flushes;
  maybe_compact();
}

void LsmStore::maybe_compact() {
  if (runs_.size() <= opt_.compaction_fanin) return;
  auto merged = merge_runs(runs_);
  stats_.entries_written += merged.size();
  runs_.clear();
  runs_.push_back(make_run(std::move(merged)));
  ++stats_.compactions;
}

void LsmStore::major_compact() {
  flush();
  if (runs_.size() <= 1) return;
  auto merged = merge_runs(runs_);
  stats_.entries_written += merged.size();
  runs_.clear();
  runs_.push_back(make_run(std::move(merged)));
  ++stats_.compactions;
}

std::vector<KV> LsmStore::merge_runs(const std::vector<Run>& runs) {
  // k-way merge with a heap of cursors; duplicate keys plus-combine.
  struct Cursor {
    const std::vector<KV>* run;
    std::size_t pos;
  };
  auto cmp = [](const Cursor& a, const Cursor& b) {
    return (*b.run)[b.pos].key < (*a.run)[a.pos].key;  // min-heap
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cmp)> heap(cmp);
  std::size_t total = 0;
  for (const auto& r : runs) {
    total += r.kv.size();
    if (!r.kv.empty()) heap.push({&r.kv, 0});
  }
  std::vector<KV> out;
  out.reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    const KV& kv = (*c.run)[c.pos];
    if (!out.empty() && out.back().key == kv.key) {
      out.back().val += kv.val;
    } else {
      out.push_back(kv);
    }
    if (++c.pos < c.run->size()) heap.push(c);
  }
  return out;
}

std::optional<Value> LsmStore::get(Key k) const {
  bool found = false;
  Value acc{};
  if (auto it = mem_.find(k); it != mem_.end()) {
    acc += it->second;
    found = true;
  }
  for (const auto& run : runs_) {
    if (run.bloom && !run.bloom->may_contain(k)) {
      ++stats_.bloom_skips;  // definite miss: skip the binary search
      continue;
    }
    auto it = std::lower_bound(
        run.kv.begin(), run.kv.end(), k,
        [](const KV& kv, const Key& key) { return kv.key < key; });
    if (it != run.kv.end() && it->key == k) {
      acc += it->val;
      found = true;
    }
  }
  if (!found) return std::nullopt;
  return acc;
}

std::vector<KV> LsmStore::merged_view() const {
  std::vector<Run> all;
  all.reserve(runs_.size() + 1);
  for (const auto& r : runs_) all.push_back(Run{r.kv, std::nullopt});
  if (!mem_.empty()) {
    std::vector<KV> m;
    m.reserve(mem_.size());
    for (const auto& [k, v] : mem_) m.push_back({k, v});
    all.push_back(Run{std::move(m), std::nullopt});
  }
  return merge_runs(all);
}

std::size_t LsmStore::size() const { return merged_view().size(); }

}  // namespace store
