// store/bloom.hpp — Bloom filters for LSM run pruning.
//
// Accumulo attaches Bloom filters to RFiles so point lookups skip runs
// that cannot contain the key; our LSM model does the same per sorted
// run. Standard double-hashing construction (Kirsch-Mitzenmacher): k
// probes derived from two 64-bit hashes of the key.
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "gbx/error.hpp"
#include "store/kv_types.hpp"

namespace store {

class BloomFilter {
 public:
  /// Sized for `expected` keys at roughly the given false-positive rate
  /// (bits = -n ln(p) / ln(2)^2, k = bits/n ln 2 — the textbook optimum).
  explicit BloomFilter(std::size_t expected, double fp_rate = 0.01) {
    GBX_CHECK_VALUE(expected > 0, "bloom: expected count must be positive");
    GBX_CHECK_VALUE(fp_rate > 0 && fp_rate < 1, "bloom: fp_rate in (0,1)");
    const double ln2 = 0.6931471805599453;
    const double bits =
        -static_cast<double>(expected) * std::log(fp_rate) / (ln2 * ln2);
    nbits_ = std::max<std::size_t>(64, static_cast<std::size_t>(bits) + 1);
    k_ = std::max(1, static_cast<int>(bits / static_cast<double>(expected) * ln2 + 0.5));
    words_.assign((nbits_ + 63) / 64, 0);
  }

  void add(const Key& key) {
    auto [h1, h2] = hashes(key);
    for (int i = 0; i < k_; ++i) set_bit((h1 + static_cast<std::uint64_t>(i) * h2) % nbits_);
    ++count_;
  }

  /// False means definitely absent; true means possibly present.
  bool may_contain(const Key& key) const {
    auto [h1, h2] = hashes(key);
    for (int i = 0; i < k_; ++i)
      if (!get_bit((h1 + static_cast<std::uint64_t>(i) * h2) % nbits_)) return false;
    return true;
  }

  std::size_t bits() const { return nbits_; }
  int hash_count() const { return k_; }
  std::size_t keys_added() const { return count_; }
  std::size_t memory_bytes() const { return words_.size() * 8; }

 private:
  static std::pair<std::uint64_t, std::uint64_t> hashes(const Key& key) {
    auto mix = [](std::uint64_t x) {
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebull;
      x ^= x >> 31;
      return x;
    };
    const std::uint64_t h1 = mix(key.row ^ 0x9e3779b97f4a7c15ull);
    const std::uint64_t h2 = mix(key.col + 0xd1b54a32d192ed03ull) | 1;  // odd
    return {h1 ^ (h2 >> 17), h2};
  }

  void set_bit(std::uint64_t b) { words_[b >> 6] |= (1ull << (b & 63)); }
  bool get_bit(std::uint64_t b) const {
    return (words_[b >> 6] >> (b & 63)) & 1;
  }

  std::size_t nbits_;
  int k_;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace store
