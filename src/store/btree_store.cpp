#include "store/btree_store.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>

#include "gbx/error.hpp"

namespace store {

// ---------------------------------------------------------------------------
// Node layout — owned via unique_ptr: an inner node owns its children,
// the store owns the root, and teardown is the ownership graph itself
// (recursion depth = tree height, same as the old hand-rolled destroy).
// The leaf chain stays raw: `next` is a non-owning sibling link.
// ---------------------------------------------------------------------------

struct BTreeStore::Node {
  bool leaf;
  std::uint16_t count = 0;
  explicit Node(bool is_leaf) : leaf(is_leaf) {}
  virtual ~Node() = default;  // deleted through Node* by unique_ptr
};

struct BTreeStore::Leaf : BTreeStore::Node {
  std::array<Key, kFanout> keys;
  std::array<Value, kFanout> vals;
  Leaf* next = nullptr;
  Leaf() : Node(true) {}
};

struct BTreeStore::Inner : BTreeStore::Node {
  // children[i] holds keys < keys[i]; children[count] holds the rest.
  std::array<Key, kFanout> keys;
  std::array<std::unique_ptr<Node>, kFanout + 1> children;
  Inner() : Node(false) {}
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

BTreeStore::BTreeStore(bool enable_wal)
    : wal_enabled_(enable_wal), root_(std::make_unique<Leaf>()) {}

BTreeStore::~BTreeStore() = default;

BTreeStore::BTreeStore(BTreeStore&& o) noexcept
    : wal_enabled_(o.wal_enabled_),
      wal_(std::move(o.wal_)),
      root_(std::move(o.root_)),
      size_(o.size_),
      stats_(o.stats_) {
  o.size_ = 0;
}

BTreeStore& BTreeStore::operator=(BTreeStore&& o) noexcept {
  if (this != &o) {
    wal_enabled_ = o.wal_enabled_;
    wal_ = std::move(o.wal_);
    root_ = std::move(o.root_);
    size_ = o.size_;
    stats_ = o.stats_;
    o.size_ = 0;
  }
  return *this;
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

void BTreeStore::insert(Key k, Value v) {
  if (wal_enabled_) wal_.append(k, v);
  ++stats_.inserts;

  // Descend, remembering the path for splits.
  std::vector<Inner*> path;
  std::vector<std::uint16_t> slot;
  Node* n = root_.get();
  while (!n->leaf) {
    auto* in = static_cast<Inner*>(n);
    const auto* first = in->keys.data();
    const auto* last = first + in->count;
    const auto i = static_cast<std::uint16_t>(
        std::upper_bound(first, last, k) - first);
    path.push_back(in);
    slot.push_back(i);
    n = in->children[i].get();
  }
  auto* leaf = static_cast<Leaf*>(n);

  // Find position within the leaf.
  const auto* kfirst = leaf->keys.data();
  const auto* klast = kfirst + leaf->count;
  const auto pos =
      static_cast<std::uint16_t>(std::lower_bound(kfirst, klast, k) - kfirst);

  if (pos < leaf->count && leaf->keys[pos] == k) {
    leaf->vals[pos] += v;  // accumulate, the traffic-matrix semantics
    return;
  }

  // Shift and insert.
  for (std::uint16_t i = leaf->count; i > pos; --i) {
    leaf->keys[i] = leaf->keys[i - 1];
    leaf->vals[i] = leaf->vals[i - 1];
  }
  leaf->keys[pos] = k;
  leaf->vals[pos] = v;
  ++leaf->count;
  ++size_;

  if (leaf->count < kFanout) return;

  // Split the leaf: right half moves to a new node.
  auto right = std::make_unique<Leaf>();
  const std::uint16_t half = kFanout / 2;
  right->count = static_cast<std::uint16_t>(leaf->count - half);
  std::copy(leaf->keys.begin() + half, leaf->keys.begin() + leaf->count,
            right->keys.begin());
  std::copy(leaf->vals.begin() + half, leaf->vals.begin() + leaf->count,
            right->vals.begin());
  leaf->count = half;
  right->next = leaf->next;
  leaf->next = right.get();
  ++stats_.leaf_splits;

  Key sep = right->keys[0];
  std::unique_ptr<Node> rchild = std::move(right);

  // Propagate the separator upward.
  while (!path.empty()) {
    Inner* in = path.back();
    const std::uint16_t at = slot.back();
    path.pop_back();
    slot.pop_back();

    for (std::uint16_t i = in->count; i > at; --i) {
      in->keys[i] = in->keys[i - 1];
      in->children[i + 1] = std::move(in->children[i]);
    }
    in->keys[at] = sep;
    in->children[at + 1] = std::move(rchild);
    ++in->count;
    if (in->count < kFanout) return;

    // Split the inner node; middle key moves up.
    auto rin = std::make_unique<Inner>();
    const std::uint16_t mid = kFanout / 2;
    sep = in->keys[mid];
    rin->count = static_cast<std::uint16_t>(in->count - mid - 1);
    std::copy(in->keys.begin() + mid + 1, in->keys.begin() + in->count,
              rin->keys.begin());
    std::move(in->children.begin() + mid + 1,
              in->children.begin() + in->count + 1, rin->children.begin());
    in->count = mid;
    rchild = std::move(rin);
    ++stats_.inner_splits;
  }

  // Root split: grow the tree by one level.
  auto nroot = std::make_unique<Inner>();
  nroot->count = 1;
  nroot->keys[0] = sep;
  nroot->children[0] = std::move(root_);
  nroot->children[1] = std::move(rchild);
  root_ = std::move(nroot);
  ++stats_.height;
}

// ---------------------------------------------------------------------------
// Lookup / scan support
// ---------------------------------------------------------------------------

std::optional<Value> BTreeStore::get(Key k) const {
  const Node* n = root_.get();
  while (!n->leaf) {
    const auto* in = static_cast<const Inner*>(n);
    const auto* first = in->keys.data();
    const auto i = static_cast<std::uint16_t>(
        std::upper_bound(first, first + in->count, k) - first);
    n = in->children[i].get();
  }
  const auto* leaf = static_cast<const Leaf*>(n);
  const auto* first = leaf->keys.data();
  const auto* last = first + leaf->count;
  const auto* it = std::lower_bound(first, last, k);
  if (it == last || *it != k) return std::nullopt;
  return leaf->vals[static_cast<std::size_t>(it - first)];
}

const BTreeStore::Leaf* BTreeStore::first_leaf() const {
  if (root_ == nullptr) return nullptr;
  const Node* n = root_.get();
  while (!n->leaf) n = static_cast<const Inner*>(n)->children[0].get();
  return static_cast<const Leaf*>(n);
}

const BTreeStore::Leaf* BTreeStore::leaf_next(const Leaf* l) { return l->next; }
std::size_t BTreeStore::leaf_count(const Leaf* l) { return l->count; }
std::pair<Key, Value> BTreeStore::leaf_entry(const Leaf* l, std::size_t i) {
  return {l->keys[i], l->vals[i]};
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

namespace {

using Node = BTreeStore::Node;

struct DepthCheck {
  int leaf_depth = -1;
  bool ok = true;
};

void check(const Node* n, int depth, const Key* lo, const Key* hi,
           DepthCheck& dc) {
  if (!dc.ok) return;
  if (n->leaf) {
    if (dc.leaf_depth < 0) dc.leaf_depth = depth;
    if (dc.leaf_depth != depth) {
      dc.ok = false;
      return;
    }
    const auto* l = static_cast<const BTreeStore::Leaf*>(n);
    for (std::uint16_t i = 0; i < l->count; ++i) {
      if (i > 0 && !(l->keys[i - 1] < l->keys[i])) dc.ok = false;
      if (lo && l->keys[i] < *lo) dc.ok = false;
      if (hi && !(l->keys[i] < *hi)) dc.ok = false;
    }
    return;
  }
  const auto* in = static_cast<const BTreeStore::Inner*>(n);
  if (in->count == 0) {
    dc.ok = false;
    return;
  }
  for (std::uint16_t i = 0; i < in->count; ++i) {
    if (i > 0 && !(in->keys[i - 1] < in->keys[i])) dc.ok = false;
    if (lo && in->keys[i] < *lo) dc.ok = false;
    if (hi && !(in->keys[i] < *hi)) dc.ok = false;
  }
  for (std::uint16_t i = 0; i <= in->count; ++i) {
    const Key* clo = (i == 0) ? lo : &in->keys[i - 1];
    const Key* chi = (i == in->count) ? hi : &in->keys[i];
    check(in->children[i].get(), depth + 1, clo, chi, dc);
  }
}

}  // namespace

bool BTreeStore::validate() const {
  if (root_ == nullptr) return false;
  DepthCheck dc;
  check(root_.get(), 0, nullptr, nullptr, dc);
  if (!dc.ok) return false;
  // Linked-leaf order must match tree order and cover exactly size_ keys.
  std::size_t n = 0;
  Key prev{};
  bool first = true;
  for (const Leaf* l = first_leaf(); l != nullptr; l = leaf_next(l)) {
    for (std::size_t i = 0; i < leaf_count(l); ++i) {
      const Key k = leaf_entry(l, i).first;
      if (!first && !(prev < k)) return false;
      prev = k;
      first = false;
      ++n;
    }
  }
  return n == size_;
}

}  // namespace store
