// store/kv_types.hpp — key/value types shared by the store baselines.
//
// The stores model database comparators of Fig. 2: keys are the (row,
// col) coordinate of a traffic-matrix update, values are counts. Keys
// order lexicographically by (row, col), matching a BigTable/Accumulo
// rowkey built from source+destination IP.
#pragma once

#include <compare>
#include <cstdint>

#include "gbx/types.hpp"

namespace store {

struct Key {
  gbx::Index row = 0;
  gbx::Index col = 0;

  friend constexpr auto operator<=>(const Key&, const Key&) = default;
};

using Value = double;

struct KV {
  Key key;
  Value val{};
};

}  // namespace store
