// store/lsm_store.hpp — log-structured merge store (Accumulo model).
//
// Models the ingest path of an Apache Accumulo tablet server (the
// "Accumulo" and "Accumulo D4M" baselines of Fig. 2): every insert pays a
// WAL append plus an ordered-memtable update; full memtables flush to
// immutable sorted runs; size-tiered compaction merges runs. Duplicate
// keys combine with plus, Accumulo SummingCombiner-style.
//
// The crucial contrast with hierarchical GraphBLAS: the memtable is an
// ordered tree updated *per entry* (pointer-chasing into slow memory on
// every insert), whereas the cascade appends to a flat buffer and defers
// all ordering to batched merges. The rate gap in bench_fig2 comes from
// exactly this difference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "store/bloom.hpp"
#include "store/kv_types.hpp"
#include "store/wal.hpp"

namespace store {

struct LsmOptions {
  std::size_t memtable_limit = 1u << 16;  ///< entries before flush
  std::size_t compaction_fanin = 8;       ///< max runs before compaction
  bool enable_wal = true;
  bool enable_bloom = true;               ///< per-run Bloom filters
  double bloom_fp_rate = 0.01;
};

struct LsmStats {
  std::uint64_t inserts = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t entries_written = 0;  ///< entries written during flush+compact
  std::uint64_t bloom_skips = 0;      ///< run probes avoided by Bloom filters
};

class LsmStore {
 public:
  explicit LsmStore(LsmOptions opt = {});

  /// value(key) += v (SummingCombiner semantics).
  void insert(Key k, Value v);

  /// Point lookup across memtable and runs (newest first is irrelevant
  /// under summing semantics: all fragments are combined).
  std::optional<Value> get(Key k) const;

  /// Number of live (distinct-key) entries. O(total stored fragments).
  std::size_t size() const;

  /// Ordered scan of the fully-merged view: f(key, value) in key order.
  template <class F>
  void scan(F&& f) const {
    auto merged = merged_view();
    for (const auto& kv : merged) f(kv.key, kv.val);
  }

  /// Force-flush the memtable to a run.
  void flush();

  /// Merge all runs (and the memtable) into a single run.
  void major_compact();

  const LsmStats& stats() const { return stats_; }
  std::size_t num_runs() const { return runs_.size(); }
  std::size_t memtable_entries() const { return mem_.size(); }
  std::uint64_t wal_bytes() const { return wal_.bytes_logged(); }

  /// Full merged snapshot as a sorted vector (test/analysis hook).
  std::vector<KV> merged_view() const;

 private:
  /// One immutable sorted run plus its (optional) Bloom filter, the shape
  /// of an Accumulo RFile.
  struct Run {
    std::vector<KV> kv;
    std::optional<BloomFilter> bloom;
  };

  void maybe_compact();
  Run make_run(std::vector<KV> kv) const;
  static std::vector<KV> merge_runs(const std::vector<Run>& runs);

  LsmOptions opt_;
  WriteAheadLog wal_;
  std::map<Key, Value> mem_;  // ordered memtable (skip-list stand-in)
  std::vector<Run> runs_;     // immutable sorted runs, oldest first
  mutable LsmStats stats_;    // bloom_skips counted from const lookups
};

}  // namespace store
