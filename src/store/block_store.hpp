// store/block_store.hpp — checksummed block storage behind a byte-
// budgeted cache (the out-of-core tier's I/O layer).
//
// The hier demotion path (hier/tier.hpp) serializes cold bottom-level
// segments into opaque *blocks*; this header is everything below that:
//
//   BlockBackend — the minimal durable surface (write/read/erase/ids),
//     so tests can wrap it with failpoints and the tier never knows.
//   MemBackend   — an in-memory map (tests, ephemeral tiers).
//   FileBackend  — a single append-only file of store::RecordLog frames
//     (okon's single-file layout): the frame epoch carries the block id,
//     the payload is the block, and reopening scans the frames to
//     rebuild the catalog — a torn tail (crash mid-append) is truncated
//     away, exactly the WAL's recovery rule. Rewrites append a
//     superseding frame; erases append a zero-length tombstone frame.
//   BlockStore   — the facade the tier talks to: allocate()/put()/get()
//     with an LRU cache budgeted in bytes (RethinkDB's serializer /
//     buffer_cache split), and an end-to-end checksum recorded at put()
//     and verified on every cache miss, so a torn write, short read, or
//     bit flip in ANY backend surfaces as a loud gbx::Error instead of
//     silently-wrong query results. FileBackend frames re-verify their
//     own checksum on read as well, which also covers blocks written
//     before a reopen (put-time sums don't survive the process).
//
// Thread-safety: BlockStore serializes every operation on one mutex —
// snapshot readers probe demoted blocks from arbitrary threads while
// the owner demotes more. Backends are only ever called under that
// mutex and need no locking of their own.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gbx/error.hpp"
#include "gbx/thread_annotations.hpp"
#include "store/wal.hpp"

namespace store {

using BlockId = std::uint64_t;

/// Monotone counters of one BlockStore's traffic (copyable POD view).
struct BlockStoreStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t erases = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t bytes_written = 0;  ///< payload bytes through put()
  std::uint64_t bytes_read = 0;     ///< payload bytes read from the backend
  std::uint64_t checksum_failures = 0;  ///< rejected reads (each threw)
};

/// The durable surface under a BlockStore. Implementations may throw
/// gbx::Error on I/O failure; they are called under the store's mutex.
class BlockBackend {
 public:
  virtual ~BlockBackend() = default;

  /// Store (or supersede) one block.
  virtual void write(BlockId id, const void* data, std::size_t size) = 0;

  /// Read a block into `out`; false when the id is unknown.
  virtual bool read(BlockId id, std::string& out) = 0;

  /// Forget a block (idempotent).
  virtual void erase(BlockId id) = 0;

  /// Catalog of live blocks as (id, payload bytes) pairs.
  virtual std::vector<std::pair<BlockId, std::uint64_t>> entries() const = 0;
};

/// In-memory backend: the default for tests and ephemeral tiers.
class MemBackend final : public BlockBackend {
 public:
  void write(BlockId id, const void* data, std::size_t size) override {
    blocks_[id].assign(static_cast<const char*>(data), size);
  }

  bool read(BlockId id, std::string& out) override {
    auto it = blocks_.find(id);
    if (it == blocks_.end()) return false;
    out = it->second;
    return true;
  }

  void erase(BlockId id) override { blocks_.erase(id); }

  std::vector<std::pair<BlockId, std::uint64_t>> entries() const override {
    std::vector<std::pair<BlockId, std::uint64_t>> out;
    out.reserve(blocks_.size());
    for (const auto& [id, bytes] : blocks_)
      out.emplace_back(id, static_cast<std::uint64_t>(bytes.size()));
    return out;
  }

  /// Test hook: direct mutable access to a stored payload (fault
  /// injection corrupts bytes at rest through this).
  std::string* payload(BlockId id) {
    auto it = blocks_.find(id);
    return it == blocks_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<BlockId, std::string> blocks_;
};

/// Single-file append-only backend. Every mutation is one RecordLog
/// frame `[magic][block id][size][payload][fnv1a of id|size|payload]`
/// (the WAL's frame_sum, so a decoder replay and a vacuum rewrite agree
/// with a direct append); a zero-size payload is a tombstone. open() replays the frames into an offset catalog and
/// truncates the file at the first torn or corrupt frame — the crash-
/// recovery rule of the WAL, applied to block storage: whatever a crash
/// tore off simply reverts to "unknown block", never to wrong bytes.
class FileBackend final : public BlockBackend {
 public:
  explicit FileBackend(std::string path) : path_(std::move(path)) { open(); }

  void write(BlockId id, const void* data, std::size_t size) override {
    append_frame(id, data, size);
    catalog_[id] = Extent{frame_payload_offset(end_before_last_), size};
    if (size == 0) catalog_.erase(id);  // tombstone
  }

  bool read(BlockId id, std::string& out) override {
    auto it = catalog_.find(id);
    if (it == catalog_.end()) return false;
    const Extent& e = it->second;
    file_.clear();
    file_.seekg(static_cast<std::streamoff>(e.offset - kHeaderBytes));
    std::string frame(kHeaderBytes + e.size + sizeof(std::uint64_t), '\0');
    file_.read(frame.data(), static_cast<std::streamsize>(frame.size()));
    GBX_CHECK(file_.gcount() == static_cast<std::streamsize>(frame.size()),
              "block file: short read (truncated block frame)");
    std::uint64_t magic = 0, fid = 0, fsize = 0, sum = 0;
    std::memcpy(&magic, frame.data(), 8);
    std::memcpy(&fid, frame.data() + 8, 8);
    std::memcpy(&fsize, frame.data() + 16, 8);
    std::memcpy(&sum, frame.data() + kHeaderBytes + e.size, 8);
    GBX_CHECK(magic == detail::kRecordMagic && fid == id && fsize == e.size,
              "block file: frame header mismatch (corrupt block file)");
    GBX_CHECK(sum == detail::frame_sum(fid, fsize, frame.data() + kHeaderBytes),
              "block file: block checksum mismatch (corrupt block file)");
    out.assign(frame.data() + kHeaderBytes, static_cast<std::size_t>(e.size));
    return true;
  }

  void erase(BlockId id) override {
    if (catalog_.find(id) == catalog_.end()) return;
    append_frame(id, nullptr, 0);
    catalog_.erase(id);
  }

  std::vector<std::pair<BlockId, std::uint64_t>> entries() const override {
    std::vector<std::pair<BlockId, std::uint64_t>> out;
    out.reserve(catalog_.size());
    for (const auto& [id, e] : catalog_) out.emplace_back(id, e.size);
    return out;
  }

  const std::string& path() const { return path_; }

  /// Bytes of the backing file (live + superseded frames; the file is
  /// append-only between vacuums).
  std::uint64_t file_bytes() const { return end_; }

  /// Rewrite the file with only the live frames (reclaims superseded
  /// and tombstoned space). O(live bytes); callers schedule it off the
  /// ingest path, like the tier's run compaction.
  void vacuum() {
    const std::string tmp = path_ + ".vacuum";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      GBX_CHECK(out.good(), "block file: cannot create vacuum file");
      RecordLogWriter w(out);
      std::string payload;
      for (const auto& [id, e] : catalog_) {
        GBX_CHECK(read(id, payload), "block file: vacuum lost a block");
        w.append(id, payload.data(), payload.size());
      }
      out.flush();
      GBX_CHECK(out.good(), "block file: vacuum write failure");
    }
    file_.close();
    std::filesystem::rename(tmp, path_);
    open();
  }

 private:
  struct Extent {
    std::uint64_t offset = 0;  ///< payload offset in the file
    std::uint64_t size = 0;    ///< payload bytes
  };

  static constexpr std::uint64_t kHeaderBytes = 3 * sizeof(std::uint64_t);

  static std::uint64_t frame_payload_offset(std::uint64_t frame_start) {
    return frame_start + kHeaderBytes;
  }

  /// Scan the file, rebuild the catalog, truncate at the first frame the
  /// decoder cannot complete (torn tail) or rejects (corruption: from
  /// that point on nothing can be trusted — the affected blocks revert
  /// to "unknown", reads of them fail loudly).
  void open() {
    {
      std::ofstream touch(path_, std::ios::binary | std::ios::app);
      GBX_CHECK(touch.good(), "block file: cannot open for append");
    }
    catalog_.clear();
    std::uint64_t good_end = 0;
    {
      std::ifstream in(path_, std::ios::binary);
      GBX_CHECK(in.good(), "block file: cannot open for scan");
      RecordFrameDecoder dec;
      LogRecord rec;
      bool eof = false;
      for (;;) {
        const auto st = dec.next(rec);
        if (st == RecordFrameDecoder::Status::kFrame) {
          good_end += kHeaderBytes + rec.payload.size() + sizeof(std::uint64_t);
          if (rec.payload.empty()) {
            catalog_.erase(rec.epoch);
          } else {
            catalog_[rec.epoch] =
                Extent{frame_payload_offset(good_end - kHeaderBytes -
                                            rec.payload.size() -
                                            sizeof(std::uint64_t)),
                       rec.payload.size()};
          }
          continue;
        }
        if (st == RecordFrameDecoder::Status::kCorrupt || eof) break;
        char chunk[1u << 16];
        in.read(chunk, sizeof chunk);
        const auto got = static_cast<std::size_t>(in.gcount());
        if (got > 0) dec.feed(chunk, got);
        else eof = true;
      }
    }
    if (std::filesystem::file_size(path_) != good_end)
      std::filesystem::resize_file(path_, good_end);
    end_ = good_end;
    file_.open(path_, std::ios::binary | std::ios::in | std::ios::out);
    GBX_CHECK(file_.good(), "block file: cannot open for read/write");
  }

  void append_frame(BlockId id, const void* data, std::size_t size) {
    file_.clear();
    file_.seekp(static_cast<std::streamoff>(end_));
    end_before_last_ = end_;
    const std::uint64_t magic = detail::kRecordMagic;
    const std::uint64_t sz = size;
    const std::uint64_t sum = detail::frame_sum(id, sz, data);
    file_.write(reinterpret_cast<const char*>(&magic), 8);
    file_.write(reinterpret_cast<const char*>(&id), 8);
    file_.write(reinterpret_cast<const char*>(&sz), 8);
    if (size > 0)
      file_.write(static_cast<const char*>(data),
                  static_cast<std::streamsize>(size));
    file_.write(reinterpret_cast<const char*>(&sum), 8);
    file_.flush();
    GBX_CHECK(file_.good(), "block file: append failure");
    end_ += kHeaderBytes + size + sizeof(std::uint64_t);
  }

  std::string path_;
  std::fstream file_;
  std::uint64_t end_ = 0;              ///< logical end (append point)
  std::uint64_t end_before_last_ = 0;  ///< frame start of the last append
  std::unordered_map<BlockId, Extent> catalog_;
};

struct BlockStoreConfig {
  /// Byte budget of the read cache (payload bytes; metadata not
  /// counted). 0 disables caching entirely.
  std::size_t cache_budget_bytes = 8u << 20;
};

/// The facade the out-of-core tier reads and writes through. Blocks are
/// immutable once put (the tier never rewrites an id); get() returns a
/// shared payload that stays valid however the cache churns.
class BlockStore {
 public:
  explicit BlockStore(std::unique_ptr<BlockBackend> backend,
                      BlockStoreConfig cfg = {})
      : backend_(std::move(backend)), cfg_(cfg) {
    GBX_CHECK_VALUE(backend_ != nullptr, "block store: null backend");
    for (const auto& [id, size] : backend_->entries()) {
      sizes_[id] = static_cast<std::size_t>(size);
      next_id_ = std::max(next_id_, id + 1);
    }
  }

  /// Reserve a fresh block id (never reused within this store's life).
  BlockId allocate() {
    gbx::ScopedLock lk(mu_);
    return next_id_++;
  }

  /// Store one immutable block. The payload checksum is recorded here
  /// and verified on every backend read-back — a backend that tears the
  /// write (stores a prefix without reporting failure) is caught at the
  /// first get(). Throws whatever the backend throws (e.g. ENOSPC);
  /// nothing is recorded in that case and the id stays unknown.
  void put(BlockId id, std::string_view bytes) {
    GBX_CHECK_VALUE(!bytes.empty(), "block store: empty block payload");
    gbx::ScopedLock lk(mu_);
    backend_->write(id, bytes.data(), bytes.size());
    sums_[id] = detail::fnv1a(bytes.data(), bytes.size());
    sizes_[id] = bytes.size();
    ++stats_.puts;
    stats_.bytes_written += bytes.size();
    cache_insert(id, std::make_shared<const std::string>(bytes));
  }

  bool contains(BlockId id) const {
    gbx::ScopedLock lk(mu_);
    return sizes_.find(id) != sizes_.end();
  }

  /// Fetch a block. Throws gbx::Error when the id is unknown, the
  /// backend read fails, or the payload fails its put-time checksum —
  /// never returns wrong bytes.
  std::shared_ptr<const std::string> get(BlockId id) {
    gbx::ScopedLock lk(mu_);
    ++stats_.gets;
    if (auto it = cache_.find(id); it != cache_.end()) {
      ++stats_.cache_hits;
      lru_.splice(lru_.begin(), lru_, it->second.pos);
      return it->second.bytes;
    }
    ++stats_.cache_misses;
    GBX_CHECK(sizes_.find(id) != sizes_.end(),
              "block store: unknown block id (lost or never committed)");
    std::string payload;
    GBX_CHECK(backend_->read(id, payload),
              "block store: block missing from backend");
    stats_.bytes_read += payload.size();
    if (auto it = sums_.find(id); it != sums_.end()) {
      if (payload.size() != sizes_[id] ||
          detail::fnv1a(payload.data(), payload.size()) != it->second) {
        ++stats_.checksum_failures;
        GBX_CHECK(false,
                  "block store: block checksum mismatch (torn write, short "
                  "read, or bit corruption)");
      }
    }
    auto bytes = std::make_shared<const std::string>(std::move(payload));
    cache_insert(id, bytes);
    return bytes;
  }

  /// Drop a block (idempotent). Cached bytes already handed out stay
  /// valid through their shared_ptr.
  void erase(BlockId id) {
    gbx::ScopedLock lk(mu_);
    if (sizes_.erase(id) == 0) return;
    sums_.erase(id);
    backend_->erase(id);
    ++stats_.erases;
    if (auto it = cache_.find(id); it != cache_.end()) {
      cache_bytes_ -= it->second.bytes->size();
      lru_.erase(it->second.pos);
      cache_.erase(it);
    }
  }

  std::size_t blocks() const {
    gbx::ScopedLock lk(mu_);
    return sizes_.size();
  }

  /// Payload bytes of all live blocks (the tier's on-"disk" footprint).
  std::uint64_t bytes_stored() const {
    gbx::ScopedLock lk(mu_);
    std::uint64_t n = 0;
    for (const auto& [id, size] : sizes_) n += size;
    return n;
  }

  std::size_t cache_bytes() const {
    gbx::ScopedLock lk(mu_);
    return cache_bytes_;
  }

  BlockStoreStats stats() const {
    gbx::ScopedLock lk(mu_);
    return stats_;
  }

  const BlockStoreConfig& config() const { return cfg_; }

  /// The backend, for maintenance entry points (FileBackend::vacuum) and
  /// test failpoint control. Same external-synchronization rule as any
  /// direct backend access: do not race it against store operations —
  /// which is exactly why the analysis is waived here: the caller takes
  /// over the serialization duty mu_ normally provides.
  BlockBackend& backend() GBX_NO_THREAD_SAFETY_ANALYSIS { return *backend_; }

 private:
  struct CacheEntry {
    std::shared_ptr<const std::string> bytes;
    std::list<BlockId>::iterator pos;
  };

  /// Insert under the LRU byte budget; evicts from the cold end. A block
  /// larger than the whole budget is not retained at all (the caller
  /// already holds its shared_ptr).
  void cache_insert(BlockId id, std::shared_ptr<const std::string> bytes)
      GBX_REQUIRES(mu_) {
    if (cfg_.cache_budget_bytes == 0) return;
    if (auto it = cache_.find(id); it != cache_.end()) {
      cache_bytes_ -= it->second.bytes->size();
      lru_.erase(it->second.pos);
      cache_.erase(it);
    }
    if (bytes->size() > cfg_.cache_budget_bytes) return;
    cache_bytes_ += bytes->size();
    lru_.push_front(id);
    cache_.emplace(id, CacheEntry{std::move(bytes), lru_.begin()});
    while (cache_bytes_ > cfg_.cache_budget_bytes && lru_.size() > 1) {
      const BlockId victim = lru_.back();
      auto it = cache_.find(victim);
      cache_bytes_ -= it->second.bytes->size();
      lru_.pop_back();
      cache_.erase(it);
      ++stats_.cache_evictions;
    }
  }

  mutable gbx::Mutex mu_;
  // Set once in the constructor; the backend itself is only ever called
  // with mu_ held (see backend() for the one audited exception).
  std::unique_ptr<BlockBackend> backend_ GBX_PT_GUARDED_BY(mu_);
  BlockStoreConfig cfg_;  ///< immutable after construction
  BlockId next_id_ GBX_GUARDED_BY(mu_) = 1;
  std::unordered_map<BlockId, std::uint64_t> sums_
      GBX_GUARDED_BY(mu_);  ///< put-time checksums
  std::unordered_map<BlockId, std::size_t> sizes_
      GBX_GUARDED_BY(mu_);  ///< live block sizes
  std::list<BlockId> lru_ GBX_GUARDED_BY(mu_);  ///< front = hottest
  std::unordered_map<BlockId, CacheEntry> cache_ GBX_GUARDED_BY(mu_);
  std::size_t cache_bytes_ GBX_GUARDED_BY(mu_) = 0;
  mutable BlockStoreStats stats_ GBX_GUARDED_BY(mu_);
};

/// Convenience factories for the two stock configurations.
inline std::unique_ptr<BlockStore> make_mem_block_store(
    BlockStoreConfig cfg = {}) {
  return std::make_unique<BlockStore>(std::make_unique<MemBackend>(), cfg);
}

inline std::unique_ptr<BlockStore> make_file_block_store(
    std::string path, BlockStoreConfig cfg = {}) {
  return std::make_unique<BlockStore>(
      std::make_unique<FileBackend>(std::move(path)), cfg);
}

}  // namespace store
