// store/store.hpp — umbrella header for the database baselines.
#pragma once

#include "store/block_store.hpp"
#include "store/bloom.hpp"
#include "store/btree_store.hpp"
#include "store/kv_types.hpp"
#include "store/lsm_store.hpp"
#include "store/published_rates.hpp"
#include "store/wal.hpp"
