// Ablation A4 — query cost of the hierarchy.
//
// The paper: "Upon query, all layers in the hierarchy are summed into
// the hypersparse matrix" — queries pay for the cascade's update speed.
// This bench measures snapshot latency against hierarchy depth and
// stream position, and the update-rate/query-latency trade as c1 moves,
// quantifying the tunable the paper calls out.
#include <omp.h>

#include <cstdio>

#include "bench_util.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

namespace {

struct QuerySample {
  double update_rate;
  double query_ms;
  std::size_t snapshot_nnz;
};

QuerySample measure(std::size_t levels, std::size_t c1, std::size_t sets) {
  gen::PowerLawParams pp;
  pp.scale = 17;
  pp.seed = 31;
  gen::PowerLawGenerator g(pp);
  hier::HierMatrix<double> h(pp.dim, pp.dim,
                             hier::CutPolicy::geometric(levels, c1, 8));
  gbx::Tuples<double> batch;
  double busy = 0;
  for (std::size_t s = 0; s < sets; ++s) {
    batch.clear();
    g.batch(100000, batch);
    const double t0 = omp_get_wtime();
    h.update(batch);
    busy += omp_get_wtime() - t0;
  }
  const double q0 = omp_get_wtime();
  auto snap = h.snapshot();
  const double query_s = omp_get_wtime() - q0;
  return {static_cast<double>(sets * 100000) / busy, query_s * 1e3,
          snap.nvals()};
}

}  // namespace

int main() {
  omp_set_num_threads(1);  // per-process model, as in the paper
  benchutil::header(
      "A4 — query (snapshot) cost vs hierarchy configuration",
      "single instance, power-law stream in 100K-entry sets; snapshot "
      "latency = cost of summing all layers at query time");

  std::printf("levels\tc1\tsets\tupdate_rate\tquery_ms\tsnapshot_nnz\n");
  for (std::size_t levels : {2u, 3u, 4u, 5u}) {
    auto s = measure(levels, 1u << 13, 20);
    std::printf("%zu\t%u\t20\t%s\t%.2f\t%zu\n", levels, 1u << 13,
                benchutil::rate(s.update_rate).c_str(), s.query_ms,
                s.snapshot_nnz);
  }
  std::printf("\n");
  for (std::size_t c1 : {1u << 10, 1u << 13, 1u << 16, 1u << 19}) {
    auto s = measure(4, c1, 20);
    std::printf("4\t%zu\t20\t%s\t%.2f\t%zu\n", c1,
                benchutil::rate(s.update_rate).c_str(), s.query_ms,
                s.snapshot_nnz);
  }
  std::printf("\n");
  for (std::size_t sets : {5u, 20u, 60u}) {
    auto s = measure(4, 1u << 13, sets);
    std::printf("4\t%u\t%zu\t%s\t%.2f\t%zu\n", 1u << 13, sets,
                benchutil::rate(s.update_rate).c_str(), s.query_ms,
                s.snapshot_nnz);
  }
  benchutil::note(
      "expected shape: query latency grows with accumulated nnz (the top "
      "level dominates) and is insensitive to c1; update rate is the "
      "inverse trade as in bench_cut_sweep.");
  return 0;
}
