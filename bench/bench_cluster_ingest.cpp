// Cluster ingest scaling — aggregate insert rate through the N-primary
// router as the worker-process count grows.
//
// The full multi-process topology, on loopback: for each sweep point P,
// P forked worker processes (1-lane ingest stacks) sit behind one
// cluster::Router, and P concurrent clients stream Kronecker batches
// through it (row-hash fan-out, whole-batch atomicity). The flush
// barrier is the applied barrier on every worker, and the run's Σ Ai is
// read back through an epoch-stitched query. Every streamed edge
// carries value 1.0, so the exact stitched sum IS the streamed entry
// count — exactness gates the run at every P, on every host; a cluster
// that drops, duplicates, or half-routes a batch can never green.
//
// The gated rate metric is scaling_ratio = rate(P=max) / rate(P=1):
// with enough hardware threads for the whole topology (>= 2x workers:
// each worker needs a lane thread + event loop, and the router/clients
// ride the rest) the aggregate rate must not DROP as workers are added
// — the monotone-scaling floor CLUSTER_MIN_SCALING (1.0). On smaller
// hosts every process multiplexes the same cores and the sweep only
// measures scheduler churn, so the floor drops to
// CLUSTER_MIN_SCALING_SERIAL (0.25): still loud on livelocks and
// per-worker serialization bugs, not a core-count test.
//
// All workers (for every sweep point) are forked up front, while the
// process is still single-threaded — fork and threads don't mix.
//
//   CLUSTER_MAX_WORKERS          sweep ceiling                  (def 4)
//   CLUSTER_SETS                 batches per client             (def 8)
//   CLUSTER_SET_SIZE             entries per batch              (def 50000)
//   CLUSTER_MIN_SCALING          floor, hw >= 2x workers        (def 1.0)
//   CLUSTER_MIN_SCALING_SERIAL   floor otherwise                (def 0.25)
//
// BENCH_JSON: {"bench":"cluster_ingest","scaling_ratio":r,
// "exact_ratio":1|0,"rate_p<P>_ref":e/s...}. Gated: scaling_ratio and
// exact_ratio; absolute per-P rates are _ref-suffixed (host-sensitive).
#include <cstdio>
#include <cstdlib>

#ifdef __linux__

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "gen/kronecker.hpp"
#include "hier/hier.hpp"
#include "net/net.hpp"

namespace {

std::size_t env_or_sz(const char* name, std::size_t fallback) {
  const char* s = std::getenv(name);
  return (s != nullptr && *s != '\0') ? static_cast<std::size_t>(std::atoll(s))
                                      : fallback;
}

double env_or_d(const char* name, double fallback) {
  const char* s = std::getenv(name);
  return (s != nullptr && *s != '\0') ? std::atof(s) : fallback;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kScale = 16;
constexpr gbx::Index kDim = gbx::Index{1} << kScale;

struct SweepResult {
  double rate = 0;
  bool exact = false;
};

/// One sweep point: router over `procs`, |procs| clients streaming.
SweepResult run_sweep(std::vector<cluster::SpawnedWorker>& procs,
                      const std::vector<std::vector<gbx::Tuples<double>>>& work,
                      double streamed) {
  const std::size_t nclients = procs.size();
  cluster::Router::Options ropt;
  ropt.nrows = kDim;
  ropt.ncols = kDim;
  cluster::Router router(cluster::map_of(procs), ropt);
  router.start();

  const double t0 = now_seconds();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < nclients; ++c) {
    threads.emplace_back([&router, &work, c] {
      cluster::RouterClient cli;
      cli.connect("127.0.0.1", router.port());
      for (const auto& b : work[c]) cli.insert(b);
      cli.flush();  // applied barrier on every worker this client touched
      cli.bye();
    });
  }
  for (auto& t : threads) t.join();
  const double wall = now_seconds() - t0;

  cluster::RouterClient probe;
  probe.connect("127.0.0.1", router.port());
  const auto snap = hier::acquire_snapshot(probe);  // epoch-stitched Σ Ai
  probe.bye();
  router.stop();

  SweepResult r;
  r.rate = wall > 0 ? streamed / wall : 0;
  r.exact = snap.reduce() == streamed &&
            snap.part_epochs().size() == procs.size();
  return r;
}

}  // namespace

int main() {
  const std::size_t max_workers = env_or_sz("CLUSTER_MAX_WORKERS", 4);
  const std::size_t sets = env_or_sz("CLUSTER_SETS", 8);
  const std::size_t set_size = env_or_sz("CLUSTER_SET_SIZE", 50000);
  const unsigned hw = std::thread::hardware_concurrency();
  const bool roomy = hw >= 2 * max_workers;
  const double min_scaling =
      roomy ? env_or_d("CLUSTER_MIN_SCALING", 1.0)
            : env_or_d("CLUSTER_MIN_SCALING_SERIAL", 0.25);

  // Fork EVERY worker for EVERY sweep point now, single-threaded.
  cluster::WorkerConfig wcfg;
  wcfg.nrows = kDim;
  wcfg.ncols = kDim;
  wcfg.cuts = hier::CutPolicy::geometric(4, 4096, 8);
  std::vector<std::vector<cluster::SpawnedWorker>> fleets;
  for (std::size_t p = 1; p <= max_workers; ++p) {
    fleets.emplace_back();
    for (std::size_t w = 0; w < p; ++w)
      fleets.back().push_back(cluster::spawn_worker_process(wcfg));
  }

  benchutil::header(
      "Cluster ingest scaling (N-primary router, forked workers)",
      "aggregate insert rate through cluster::Router as the worker-process "
      "count grows; the epoch-stitched Σ Ai gates exactness at every P");
  benchutil::note("P = 1.." + std::to_string(max_workers) + " workers, P "
                  "clients x " + std::to_string(sets) + " x " +
                  std::to_string(set_size) + " entries; " +
                  std::to_string(hw) + " hw threads (" +
                  (roomy ? "monotone" : "serial") + " floor); gate "
                  "scaling_ratio >= " + std::to_string(min_scaling));

  std::vector<std::vector<gbx::Tuples<double>>> work(max_workers);
  for (std::size_t c = 0; c < max_workers; ++c) {
    gen::KroneckerParams kp;
    kp.scale = kScale;
    kp.seed = 10100 + c;
    gen::KroneckerGenerator g(kp);
    for (std::size_t b = 0; b < sets; ++b)
      work[c].push_back(g.batch<double>(set_size));
  }

  std::printf("workers\trate\texact\n");
  std::vector<double> rates;
  bool exact = true;
  for (std::size_t p = 1; p <= max_workers; ++p) {
    const double streamed = static_cast<double>(p * sets * set_size);
    SweepResult r = run_sweep(fleets[p - 1], work, streamed);
    for (auto& w : fleets[p - 1]) cluster::kill_worker(w);
    rates.push_back(r.rate);
    exact = exact && r.exact;
    std::printf("%zu\t%s\t%s\n", p, benchutil::rate(r.rate).c_str(),
                r.exact ? "ok" : "VIOLATED");
  }

  const double scaling =
      rates.front() > 0 ? rates.back() / rates.front() : 0;
  const bool pass = exact && scaling >= min_scaling;

  std::printf("\nresult: %s (scaling_ratio %.3f vs %s floor %.2f, "
              "stitched Σ Ai %s at every P)\n",
              pass ? "PASS" : "FAIL", scaling,
              roomy ? "monotone" : "serial", min_scaling,
              exact ? "exact" : "DIVERGED");
  std::string json =
      "BENCH_JSON {\"bench\":\"cluster_ingest\",\"max_workers\":" +
      std::to_string(max_workers) + ",\"sets\":" + std::to_string(sets) +
      ",\"set_size\":" + std::to_string(set_size) + ",\"scaling_ratio\":" +
      std::to_string(scaling) + ",\"exact_ratio\":" +
      (exact ? std::string("1.0") : std::string("0.0"));
  for (std::size_t p = 1; p <= max_workers; ++p)
    json += ",\"rate_p" + std::to_string(p) + "_ref\":" +
            std::to_string(rates[p - 1]);
  json += ",\"min_scaling_ref\":" + std::to_string(min_scaling) +
          ",\"hw_threads_ref\":" + std::to_string(hw) + ",\"pass\":" +
          (pass ? "true" : "false") + "}";
  std::printf("%s\n", json.c_str());
  return pass ? 0 : 1;
}

#else  // !__linux__

int main() {
  std::printf("bench_cluster_ingest: the cluster router is Linux-only\n");
  return 0;
}

#endif
