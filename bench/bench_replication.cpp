// Replication overhead — ingest rate with WAL shipping on vs off.
//
// Two identical loopback ingest runs: N clients stream Kronecker
// batches into net::IngestServer and flush (the applied barrier). The
// second run arms the full PR-9 replication chain — every accepted
// batch is seq-stamped into the primary's replication WAL, shipped to a
// live repl::ReplicaServer, applied there, and acked; the final flush
// additionally waits for the replica to be durable (acked ⊆
// replicated). rate_ratio = shipped_rate / baseline_rate is the gated
// metric: replication is pipelined off the accept path (logger thread
// on the primary, lane workers on the replica), so with cores to
// pipeline on it may only cost a thin slice of ingest throughput.
// Exactness is checked on BOTH ends — the primary's served Σ Ai and
// the stopped replica's per-lane Σ Ai must equal the streamed entry
// count — so the ratio can never green a replica that lags or
// diverges.
//
// The self-gate floor adapts to what the host can physically do: with
// >= 4 hardware threads the chain overlaps ingest and the floor is
// REPL_MIN_RATE_RATIO (0.85 — replication may cost at most 15%).
// Below that there is nothing to pipeline ON — the wall ratio
// degenerates to serial work_off/work_on (a second full apply, two
// more WAL checksum passes, a socket hop: ~2.5x the work), so the
// floor drops to REPL_MIN_RATE_RATIO_SERIAL (0.30), which still fails
// loudly on stalls, livelocks, and ack starvation while not failing
// single-core hosts for lacking cores.
//
//   REPL_CLIENTS                 client/lane count              (def 2)
//   REPL_SETS                    batches per client             (def 12)
//   REPL_SET_SIZE                entries per batch              (def 50000)
//   REPL_MIN_RATE_RATIO          floor, >= 4 hw threads         (def 0.85)
//   REPL_MIN_RATE_RATIO_SERIAL   floor, < 4 hw threads          (def 0.30)
//
// BENCH_JSON: {"bench":"replication","rate_ratio":r,"exact_ratio":1|0,
// "baseline_rate_ref":e/s,"shipped_rate_ref":e/s,...}. Gated metrics:
// rate_ratio (same-host relative, comparable across machines) and
// exact_ratio; absolute rates are _ref-suffixed (host-sensitive).
#include <cstdio>
#include <cstdlib>

#ifdef __linux__

#include <filesystem>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "gen/kronecker.hpp"
#include "hier/hier.hpp"
#include "net/net.hpp"
#include "repl/repl.hpp"

namespace {

std::size_t env_or_sz(const char* name, std::size_t fallback) {
  const char* s = std::getenv(name);
  return (s != nullptr && *s != '\0') ? static_cast<std::size_t>(std::atoll(s))
                                      : fallback;
}

double env_or_d(const char* name, double fallback) {
  const char* s = std::getenv(name);
  return (s != nullptr && *s != '\0') ? std::atof(s) : fallback;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  double rate = 0;          ///< applied entries / wall seconds to barrier
  double server_sum = 0;    ///< primary's served Σ Ai
  double replica_sum = 0;   ///< stopped replica's Σ Ai (replicated only)
  bool exact = false;
};

std::string tmp_wal(const char* stem) {
  return (std::filesystem::temp_directory_path() /
          (std::string(stem) + "_" + std::to_string(::getpid()) + ".bin"))
      .string();
}

RunResult run_once(bool replicated,
                   const std::vector<std::vector<gbx::Tuples<double>>>& work,
                   std::size_t clients, double streamed) {
  const gbx::Index dim = gbx::Index{1} << 16;
  const auto cuts = hier::CutPolicy::geometric(4, 4096, 8);

  const std::string primary_wal = tmp_wal("bench_repl_primary");
  const std::string replica_wal = tmp_wal("bench_repl_replica");
  std::filesystem::remove(replica_wal);

  // Replica first (the shipper dials it as soon as the primary starts).
  std::unique_ptr<repl::ReplicaServer> replica;
  if (replicated) {
    repl::ReplicaOptions ropt;
    ropt.wal_path = replica_wal;
    ropt.lanes = clients;
    ropt.nrows = dim;
    ropt.ncols = dim;
    ropt.cuts = cuts;
    ropt.auto_promote = false;  // the primary lives; no failover here
    replica = std::make_unique<repl::ReplicaServer>(ropt);
    replica->start();
  }

  hier::InstanceArray<double> array(clients, dim, dim, cuts);
  hier::ParallelStream<double> stream(array);
  stream.start();
  hier::MemoryGovernor<hier::ParallelStream<double>> governor(stream);

  std::unique_ptr<repl::PrimaryReplicator> replicator;
  net::IngestServer::Options sopt;
  if (replicated) {
    repl::ShipperOptions shop;
    shop.port = replica->port();
    shop.wal_path = primary_wal;
    replicator = std::make_unique<repl::PrimaryReplicator>(stream, shop);
    replicator->start();
    sopt.replication = replicator.get();
  }
  net::IngestServer server(stream, governor, sopt);
  server.start();

  const double t0 = now_seconds();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::Client cli;
      cli.connect("127.0.0.1", server.port());
      for (const auto& b : work[c]) cli.insert(b, c);
      cli.flush();  // replicated: also waits for replica durability
      cli.bye();
    });
  }
  for (auto& t : threads) t.join();
  const double wall = now_seconds() - t0;

  RunResult r;
  r.rate = wall > 0 ? streamed / wall : 0;

  net::Client probe;
  probe.connect("127.0.0.1", server.port());
  r.server_sum = probe.query_sum().sum;
  probe.bye();

  server.stop();
  if (replicator) replicator->stop();
  stream.stop();

  r.exact = r.server_sum == streamed;
  if (replicated) {
    replica->stop();
    double s = 0;
    for (std::size_t p = 0; p < clients; ++p)
      s += replica->array().instance(p).freeze().reduce();
    r.replica_sum = s;
    r.exact = r.exact && r.replica_sum == streamed;
    replica.reset();
  }

  std::filesystem::remove(primary_wal);
  std::filesystem::remove(replica_wal);
  return r;
}

}  // namespace

int main() {
  const std::size_t clients = env_or_sz("REPL_CLIENTS", 2);
  const std::size_t sets = env_or_sz("REPL_SETS", 12);
  const std::size_t set_size = env_or_sz("REPL_SET_SIZE", 50000);
  const unsigned hw = std::thread::hardware_concurrency();
  // The pipelined floor only applies when there are cores to pipeline
  // on; a serial host measures work_off/work_on instead (see header).
  const bool can_pipeline = hw >= 4;
  const double min_ratio =
      can_pipeline ? env_or_d("REPL_MIN_RATE_RATIO", 0.85)
                   : env_or_d("REPL_MIN_RATE_RATIO_SERIAL", 0.30);

  benchutil::header(
      "Replication overhead (WAL shipping to a live replica)",
      "loopback ingest rate with the PR-9 replication chain armed vs off; "
      "exactness of BOTH the primary's and the replica's Σ Ai gates the run");
  benchutil::note(std::to_string(clients) + " clients x " +
                  std::to_string(sets) + " x " + std::to_string(set_size) +
                  " entries; " + std::to_string(hw) + " hw threads (" +
                  (can_pipeline ? "pipelined" : "serial") +
                  " floor); gate rate_ratio >= " + std::to_string(min_ratio));

  std::vector<std::vector<gbx::Tuples<double>>> work(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    gen::KroneckerParams kp;
    kp.scale = 16;
    kp.seed = 9100 + c;
    gen::KroneckerGenerator g(kp);
    for (std::size_t b = 0; b < sets; ++b)
      work[c].push_back(g.batch<double>(set_size));
  }
  const double streamed = static_cast<double>(clients * sets * set_size);

  const RunResult off = run_once(false, work, clients, streamed);
  const RunResult on = run_once(true, work, clients, streamed);

  const double ratio = off.rate > 0 ? on.rate / off.rate : 0;
  const bool exact = off.exact && on.exact;
  const bool pass = exact && ratio >= min_ratio;

  std::printf("mode\trate\texact\n");
  std::printf("ship-off\t%s\t%s\n", benchutil::rate(off.rate).c_str(),
              off.exact ? "ok" : "VIOLATED");
  std::printf("ship-on\t%s\t%s\n", benchutil::rate(on.rate).c_str(),
              on.exact ? "ok" : "VIOLATED");
  std::printf("\nresult: %s (rate_ratio %.3f vs %s floor %.2f, Σ Ai %s on "
              "both ends)\n",
              pass ? "PASS" : "FAIL", ratio,
              can_pipeline ? "pipelined" : "serial", min_ratio,
              exact ? "exact" : "DIVERGED");
  std::printf("BENCH_JSON {\"bench\":\"replication\",\"clients\":%zu,"
              "\"sets\":%zu,\"set_size\":%zu,\"rate_ratio\":%.6f,"
              "\"exact_ratio\":%.1f,\"baseline_rate_ref\":%.1f,"
              "\"shipped_rate_ref\":%.1f,\"min_rate_ratio_ref\":%.2f,"
              "\"hw_threads_ref\":%u,\"pass\":%s}\n",
              clients, sets, set_size, ratio, exact ? 1.0 : 0.0, off.rate,
              on.rate, min_ratio, hw, pass ? "true" : "false");
  return pass ? 0 : 1;
}

#else  // !__linux__

int main() {
  std::printf("bench_replication: the epoll ingest server is Linux-only\n");
  return 0;
}

#endif
