// Ablation A6 — what moving from D4M strings to GraphBLAS integers buys.
//
// The paper's core motivation for the GraphBLAS backend: "For IP traffic
// matrices, the row and column labels can be constrained to integers
// allowing additional performance to be achieved" (Section I). This
// bench isolates that delta: the identical hierarchical cascade behind
// (a) raw integer keys, (b) dotted-quad string keys through the D4M
// dictionary, (c) decimal-string keys. The gap is pure key-handling
// overhead.
#include <omp.h>

#include <cstdio>
#include <string>

#include "assoc/assoc.hpp"
#include "bench_util.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

namespace {

constexpr std::size_t kSets = 10;
constexpr std::size_t kSetSize = 100000;

gen::PowerLawGenerator make_gen() {
  gen::PowerLawParams pp;
  pp.scale = 17;
  pp.seed = 13;
  return gen::PowerLawGenerator(pp);
}

std::string dotted(gbx::Index ip) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u",
                static_cast<unsigned>((ip >> 24) & 0xff),
                static_cast<unsigned>((ip >> 16) & 0xff),
                static_cast<unsigned>((ip >> 8) & 0xff),
                static_cast<unsigned>(ip & 0xff));
  return buf;
}

double run_integer() {
  auto g = make_gen();
  hier::HierMatrix<double> h(gbx::kIPv4Dim, gbx::kIPv4Dim,
                             hier::CutPolicy::geometric(4, 1u << 13, 8));
  gbx::Tuples<double> batch;
  double busy = 0;
  for (std::size_t s = 0; s < kSets; ++s) {
    batch.clear();
    g.batch(kSetSize, batch);
    const double t0 = omp_get_wtime();
    h.update(batch);
    busy += omp_get_wtime() - t0;
  }
  return static_cast<double>(kSets * kSetSize) / busy;
}

template <class KeyFn>
double run_strings(KeyFn&& key) {
  auto g = make_gen();
  assoc::HierAssoc<double> h(gbx::kIPv4Dim,
                             hier::CutPolicy::geometric(4, 1u << 13, 8));
  gbx::Tuples<double> batch;
  double busy = 0;
  for (std::size_t s = 0; s < kSets; ++s) {
    batch.clear();
    g.batch(kSetSize, batch);
    const double t0 = omp_get_wtime();
    for (const auto& e : batch) h.insert(key(e.row), key(e.col), e.val);
    busy += omp_get_wtime() - t0;
  }
  return static_cast<double>(kSets * kSetSize) / busy;
}

}  // namespace

int main() {
  omp_set_num_threads(1);  // single-process model
  benchutil::header(
      "A6 — D4M string-key overhead vs GraphBLAS integer keys",
      "identical 1M-entry stream and cascade; only the key representation "
      "changes");

  const double ints = run_integer();
  const double dec = run_strings([](gbx::Index v) { return std::to_string(v); });
  const double quad = run_strings(dotted);

  std::printf("key_representation\tupdates_per_s\trelative\n");
  std::printf("integer (GraphBLAS)\t%s\t1.00x\n", benchutil::rate(ints).c_str());
  std::printf("decimal string (D4M)\t%s\t%.2fx\n", benchutil::rate(dec).c_str(),
              dec / ints);
  std::printf("dotted-quad string (D4M)\t%s\t%.2fx\n",
              benchutil::rate(quad).c_str(), quad / ints);
  benchutil::note(
      "expected shape: integer keys fastest; dotted-quad slowest (longer "
      "strings, more formatting). This is the Section-I motivation for "
      "the GraphBLAS backend, isolated from everything else.");
  return 0;
}
