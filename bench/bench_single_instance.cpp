// Experiment E3 — the paper's single-instance headline (Section III /
// abstract): "Hierarchical hypersparse matrices achieve over 1,000,000
// updates per second in a single instance."
//
// Measures sustained streaming update rates of one HierMatrix instance
// for the paper's workload shape (power-law sets of 100,000 entries),
// sweeping the batch size, against the direct (non-hierarchical)
// hypersparse update path.
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"

namespace {

double measure_hier(std::size_t set_size, std::size_t total_entries) {
  cluster::WorkloadSpec w;
  w.set_size = set_size;
  w.sets = total_entries / set_size;
  w.scale = 17;
  w.seed = 1;
  auto r = cluster::run_hier_gbx(1, w, hier::CutPolicy::geometric(4, 1u << 13, 8));
  return r.aggregate_rate;
}

double measure_direct(std::size_t set_size, std::size_t total_entries) {
  cluster::WorkloadSpec w;
  w.set_size = set_size;
  w.sets = total_entries / set_size;
  w.scale = 17;
  w.seed = 1;
  auto r = cluster::run_direct_gbx(1, w);
  return r.aggregate_rate;
}

}  // namespace

int main() {
  benchutil::header(
      "E3 — single-instance streaming update rate",
      "one hierarchical hypersparse matrix instance; power-law stream "
      "(scale 17); updates/second vs batch size, hierarchical vs direct");

  std::printf("batch_size\thier_updates_per_s\tdirect_updates_per_s\tspeedup\n");
  const std::size_t total = 4000000;  // 4M entries per measurement
  for (std::size_t bs : {1000u, 10000u, 100000u, 1000000u}) {
    const double hier_rate = measure_hier(bs, total);
    const double direct_rate = measure_direct(bs, total);
    std::printf("%zu\t%s\t%s\t%.1fx\n", bs, benchutil::rate(hier_rate).c_str(),
                benchutil::rate(direct_rate).c_str(), hier_rate / direct_rate);
  }

  // The paper's exact set size:
  const double paper_rate = measure_hier(100000, 8000000);
  std::printf("\npaper workload (100K-entry sets): %s updates/s\n",
              benchutil::rate(paper_rate).c_str());
  std::printf("paper claim: > 1.0e6 updates/s single instance -> %s\n",
              paper_rate > 1e6 ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
