// bench/bench_util.hpp — shared output helpers for the experiment benches.
//
// Each experiment bench prints a self-describing table to stdout so that
// `for b in build/bench/*; do $b; done` regenerates every figure of the
// paper in text form. Formatting is deliberately plain (tab-separated)
// for downstream plotting.
#pragma once

#include <cstdio>
#include <string>

namespace benchutil {

inline void header(const std::string& experiment, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", experiment.c_str(), what.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& s) { std::printf("# %s\n", s.c_str()); }

/// Engineering-notation rate, e.g. 7.5e+10.
inline std::string rate(double r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3g", r);
  return buf;
}

}  // namespace benchutil
