// Ablation A1 — cut-value tuning.
//
// The paper: "The cut values ci can be selected so as to optimize the
// performance with respect to particular applications." This bench sweeps
// the level-1 cut c1 and the geometric growth ratio r and reports the
// single-instance update rate plus cascade statistics, exposing the
// trade-off: tiny cuts fold constantly (merge-bound), huge cuts defer all
// work to one giant fold (memory-bound and latency-spiky).
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"

namespace {

struct Sample {
  double rate;
  std::uint64_t l1_folds;
  std::size_t mem_bytes;
};

Sample measure(std::size_t c1, std::size_t ratio) {
  cluster::WorkloadSpec w;
  w.sets = 20;
  w.set_size = 100000;
  w.scale = 17;
  w.seed = 7;

  // run_hier_gbx hides the instance, so run directly here to read stats.
  gen::PowerLawParams pp;
  pp.scale = w.scale;
  pp.alpha = w.alpha;
  pp.dim = w.dim;
  pp.seed = w.seed;
  gen::PowerLawGenerator g(pp);
  hier::HierMatrix<double> h(w.dim, w.dim,
                             hier::CutPolicy::geometric(4, c1, ratio));
  gbx::Tuples<double> batch;
  double busy = 0;
  for (std::size_t s = 0; s < w.sets; ++s) {
    batch.clear();
    g.batch(w.set_size, batch);
    const double t0 = omp_get_wtime();
    h.update(batch);
    busy += omp_get_wtime() - t0;
  }
  return {static_cast<double>(w.entries_per_instance()) / busy,
          h.stats().level[0].folds, h.memory_bytes()};
}

}  // namespace

int main() {
  // Single-threaded, like one of the paper's processes: keeps the sweep
  // free of OpenMP scheduling noise so cut effects are visible.
  omp_set_num_threads(1);
  benchutil::header(
      "A1 — cut-value tuning ablation",
      "single instance (single-threaded), 2M-entry power-law stream "
      "(20 x 100K sets); update rate vs level-1 cut c1 and ratio r (4 levels)");

  std::printf("c1\tratio\tupdates_per_s\tL1_folds\tmemory_MB\n");
  for (std::size_t c1 : {1u << 8, 1u << 11, 1u << 13, 1u << 15, 1u << 18, 1u << 21}) {
    for (std::size_t ratio : {2u, 8u, 32u}) {
      auto s = measure(c1, ratio);
      std::printf("%zu\t%zu\t%s\t%llu\t%.1f\n", c1, ratio,
                  benchutil::rate(s.rate).c_str(),
                  static_cast<unsigned long long>(s.l1_folds),
                  static_cast<double>(s.mem_bytes) / 1048576.0);
    }
  }
  benchutil::note(
      "expected shape: rate rises with c1 until folds become rare, then "
      "plateaus; ratio mainly moves memory and deep-level fold counts.");
  return 0;
}
