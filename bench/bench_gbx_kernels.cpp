// Ablation A3 — substrate kernel micro-benchmarks (google-benchmark).
//
// The kernels the cascade is built from: pending append, sort+dedup fold,
// DCSR eWiseAdd merge, mxm, reduce, transpose. These locate the cost of a
// cascade fold relative to raw appends — the asymmetry the hierarchy
// exploits.
#include <benchmark/benchmark.h>

#include <random>

#include "gbx/gbx.hpp"
#include "gen/gen.hpp"

namespace {

gbx::Tuples<double> make_batch(std::size_t n, std::uint64_t seed) {
  gen::PowerLawParams p;
  p.scale = 17;
  p.seed = seed;
  gen::PowerLawGenerator g(p);
  return g.batch<double>(n);
}

gbx::Dcsr<double> make_dcsr(std::size_t n, std::uint64_t seed) {
  auto t = make_batch(n, seed);
  t.sort_dedup<gbx::PlusMonoid<double>>();
  return gbx::Dcsr<double>::from_sorted_unique(t.entries());
}

void BM_PendingAppend(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto batch = make_batch(n, 1);
  for (auto _ : state) {
    gbx::Tuples<double> pending;
    pending.append(batch);
    benchmark::DoNotOptimize(pending.entries().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PendingAppend)->Arg(1 << 13)->Arg(1 << 17)->Arg(1 << 20);

void BM_SortDedup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto batch = make_batch(n, 2);
  for (auto _ : state) {
    auto copy = batch;
    copy.sort_dedup<gbx::PlusMonoid<double>>();
    benchmark::DoNotOptimize(copy.entries().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SortDedup)->Arg(1 << 13)->Arg(1 << 17)->Arg(1 << 20);

void BM_EwiseAddMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = make_dcsr(n, 3);
  const auto b = make_dcsr(n, 4);
  for (auto _ : state) {
    auto c = gbx::ewise_add<gbx::Plus<double>>(a, b);
    benchmark::DoNotOptimize(c.nnz());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_EwiseAddMerge)->Arg(1 << 13)->Arg(1 << 17)->Arg(1 << 20);

void BM_EwiseAddAsymmetric(benchmark::State& state) {
  // The cascade's actual fold shape: small delta into a big accumulator.
  const auto big = make_dcsr(1 << 20, 5);
  const auto small = make_dcsr(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    auto c = gbx::ewise_add<gbx::Plus<double>>(big, small);
    benchmark::DoNotOptimize(c.nnz());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EwiseAddAsymmetric)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_Mxm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = gbx::Matrix<double>::adopt(gbx::kIPv4Dim, gbx::kIPv4Dim,
                                      make_dcsr(n, 7));
  auto b = gbx::Matrix<double>::adopt(gbx::kIPv4Dim, gbx::kIPv4Dim,
                                      make_dcsr(n, 8));
  for (auto _ : state) {
    auto c = gbx::mxm<gbx::PlusTimes<double>>(a, b);
    benchmark::DoNotOptimize(c.nvals());
  }
}
BENCHMARK(BM_Mxm)->Arg(1 << 12)->Arg(1 << 15);

void BM_ReduceRows(benchmark::State& state) {
  auto a = gbx::Matrix<double>::adopt(gbx::kIPv4Dim, gbx::kIPv4Dim,
                                      make_dcsr(1 << 18, 9));
  for (auto _ : state) {
    auto v = gbx::reduce_rows<gbx::PlusMonoid<double>>(a);
    benchmark::DoNotOptimize(v.nvals());
  }
}
BENCHMARK(BM_ReduceRows);

void BM_Transpose(benchmark::State& state) {
  auto a = gbx::Matrix<double>::adopt(gbx::kIPv4Dim, gbx::kIPv4Dim,
                                      make_dcsr(1 << 18, 10));
  for (auto _ : state) {
    auto t = gbx::transpose(a);
    benchmark::DoNotOptimize(t.nvals());
  }
}
BENCHMARK(BM_Transpose);

}  // namespace

BENCHMARK_MAIN();
