// Experiment E6 — parallel multi-instance streaming-insert engine.
//
// The paper's core scaling claim: aggregate update rate grows with the
// number of independent hierarchical hypersparse instances, because
// instances share nothing and each one's cascade keeps its fast level
// cache-resident. This bench drives hier::ParallelStream over a Kronecker
// (Graph500 R-MAT) edge stream and sweeps P = 1 .. hardware concurrency:
//
//   * pump  — paper-shape run: per-instance generator on the worker
//             thread, generation untimed, inserts timed (Fig. 2 metric).
//   * queue — the continuously-fed engine: a producer thread generates
//             batches and submits them round-robin through the bounded
//             lanes; wall rate includes production + dispatch.
//
// Expected shape: aggregate updates/s increases monotonically from P=1 to
// P=cores (the Fig. 2 x-axis, restricted to one node).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "gen/kronecker.hpp"
#include "hier/hier.hpp"

namespace {

gen::KroneckerGenerator make_generator(std::size_t instance,
                                       std::uint64_t base_seed) {
  gen::KroneckerParams kp;
  kp.scale = 17;
  kp.seed = base_seed + instance;
  return gen::KroneckerGenerator(kp);
}

}  // namespace

int main() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const auto cuts = hier::CutPolicy::geometric(4, 1u << 13, 8);
  const std::size_t sets = 20;        // per instance
  const std::size_t set_size = 100000;  // the paper's set granularity
  const std::uint64_t seed = 20200316;
  const gbx::Index dim = gbx::Index{1} << 17;

  benchutil::header(
      "E6 — parallel streaming-insert engine (hier::ParallelStream)",
      "aggregate update rate vs instances, Kronecker scale-17 stream");
  benchutil::note("hardware concurrency: " + std::to_string(hw));
  benchutil::note("workload: " + std::to_string(sets) + " sets x " +
                  std::to_string(set_size) + " entries per instance");

  std::vector<std::size_t> counts;
  for (std::size_t p = 1; p <= hw; p *= 2) counts.push_back(p);
  if (counts.back() != hw) counts.push_back(hw);

  std::printf("\nmode\tP\tentries\twall_s\tbusy_mean_s\tagg_rate\twall_rate\n");

  std::vector<double> pump_series;
  std::string json = "{\"bench\":\"parallel_stream\",\"hw\":" +
                     std::to_string(hw) + ",\"series\":[";
  for (std::size_t idx = 0; idx < counts.size(); ++idx) {
    const std::size_t p = counts[idx];

    // Paper-shape pump: generation untimed on the worker threads.
    hier::InstanceArray<double> pumped(p, dim, dim, cuts);
    auto rp = hier::pump<double>(pumped, sets, set_size, [&](std::size_t q) {
      return make_generator(q, seed);
    });
    std::printf("pump\t%zu\t%llu\t%.3f\t%.3f\t%s\t%s\n", p,
                static_cast<unsigned long long>(rp.entries), rp.wall_seconds,
                rp.busy_seconds_mean, benchutil::rate(rp.aggregate_rate).c_str(),
                benchutil::rate(rp.wall_rate).c_str());
    pump_series.push_back(rp.aggregate_rate);

    // Queue engine: one producer feeding all lanes round-robin.
    hier::InstanceArray<double> fed(p, dim, dim, cuts);
    hier::ParallelStream<double> engine(fed);
    engine.start();
    auto gen = make_generator(0, seed + 1000);
    for (std::size_t s = 0; s < sets * p; ++s)
      engine.submit(gen.batch<double>(set_size));
    auto rq = engine.stop();
    std::printf("queue\t%zu\t%llu\t%.3f\t%.3f\t%s\t%s\n", p,
                static_cast<unsigned long long>(rq.entries), rq.wall_seconds,
                rq.busy_seconds_mean, benchutil::rate(rq.aggregate_rate).c_str(),
                benchutil::rate(rq.wall_rate).c_str());
    std::fflush(stdout);

    json += std::string(idx ? "," : "") + "{\"instances\":" +
            std::to_string(p) + ",\"pump_agg_rate\":" +
            std::to_string(rp.aggregate_rate) + ",\"queue_wall_rate\":" +
            std::to_string(rq.wall_rate) + "}";
  }
  json += "]}";

  // Monotone up to a 10% timing-noise allowance: shared CI runners
  // routinely jitter a few percent, and the claim under test is the
  // Fig. 2 *shape*, not sample-exact ordering.
  const double tolerance = 0.90;
  bool monotone = true;
  for (std::size_t i = 1; i < pump_series.size(); ++i)
    if (pump_series[i] < tolerance * pump_series[i - 1]) monotone = false;
  std::printf("\npump aggregate rate monotone non-decreasing 1->%u "
              "(within 10%% noise): %s\n",
              hw, monotone ? "YES (Fig. 2 shape reproduced)" : "NO");
  std::printf("BENCH_JSON %s\n", json.c_str());
  return monotone ? 0 : 1;
}
