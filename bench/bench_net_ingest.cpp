// Network ingest saturation — N loopback clients vs the epoll server.
//
// The paper's ingest numbers are in-process; this bench measures what
// survives a socket: N concurrent clients each stream pre-generated
// scale-17 Kronecker batches into their own ParallelStream lane through
// net::IngestServer, flush (the applied-barrier), and the aggregate
// wall-clock insert rate is reported per client count. After every
// sweep point the server's Σ Ai is checked against the exact expected
// value (value-1.0 edges: the sum IS the entry count) — any mismatch
// fails the bench, so the perf trajectory can never green a server that
// drops or duplicates batches. Query cost is reported two ways, both
// informational: the median query_sum round-trip on a quiesced server
// (query_p50_us), and the p99 round-trip measured WHILE the writers
// saturate the server (query_p99_sat_us_ref — the freshness-under-load
// number the paper's analyst-query story cares about).
//
//   NET_CLIENTS    max client count, swept 1,2,..max doubling (def 4)
//   NET_SETS       batches per client                        (def 16)
//   NET_SET_SIZE   entries per batch                         (def 50000)
//
// BENCH_JSON: {"bench":"net_ingest","exact_ratio":1|0,"series":
// [{"clients":N,"insert_rate":e/s,"query_p50_us":us,"parks":n},...],
// "exact":bool}. Only exact_ratio is meant for the perf gate
// (scripts/check_perf.py): loopback insert rates and query latencies
// are scheduler/TCP-timing sensitive and vary across CI hosts, so the
// committed baseline deliberately omits them from its gated report.
#include <cstdio>
#include <cstdlib>

#ifdef __linux__

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "gen/kronecker.hpp"
#include "hier/hier.hpp"
#include "net/net.hpp"

namespace {

std::size_t env_or_sz(const char* name, std::size_t fallback) {
  const char* s = std::getenv(name);
  return (s != nullptr && *s != '\0') ? static_cast<std::size_t>(std::atoll(s))
                                      : fallback;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SweepPoint {
  std::size_t clients = 0;
  double insert_rate = 0;    ///< entries applied / wall seconds to barrier
  double query_p50_us = 0;   ///< median query_sum round-trip under no load
  double query_p99_sat_us = 0;  ///< p99 query_sum round-trip UNDER saturation
  std::uint64_t parks = 0;   ///< back-pressure events the server took
  bool exact = false;        ///< server Σ Ai == entries streamed
};

SweepPoint run_point(std::size_t clients, std::size_t sets,
                     std::size_t set_size) {
  const gbx::Index dim = gbx::Index{1} << 17;
  const auto cuts = hier::CutPolicy::geometric(4, 4096, 8);

  // Pre-generate every batch: the network + apply path is what's timed,
  // not Kronecker sampling (the paper's untimed packet-capture role).
  std::vector<std::vector<gbx::Tuples<double>>> work(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    gen::KroneckerParams kp;
    kp.scale = 17;
    kp.seed = 7000 + c;
    gen::KroneckerGenerator g(kp);
    for (std::size_t b = 0; b < sets; ++b)
      work[c].push_back(g.batch<double>(set_size));
  }

  hier::InstanceArray<double> array(clients, dim, dim, cuts);
  hier::ParallelStream<double> stream(array);
  stream.start();
  hier::MemoryGovernor<hier::ParallelStream<double>> governor(stream);
  net::IngestServer server(stream, governor);
  server.start();

  SweepPoint pt;
  pt.clients = clients;

  const double t0 = now_seconds();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::Client cli;
      cli.connect("127.0.0.1", server.port());
      for (const auto& b : work[c]) cli.insert(b, c);
      cli.flush();  // barrier: rate counts APPLIED entries, not buffered
      cli.bye();
    });
  }

  // Tail query latency while the ingest threads are still saturating
  // the server: a reader keeps issuing query_sum round-trips until the
  // writers reach their barrier. Reported as an informational _ref
  // field — loopback tail latency is far too host-sensitive to gate.
  std::atomic<bool> saturating{true};
  std::vector<double> sat_us;
  std::thread sat_probe([&] {
    net::Client cli;
    cli.connect("127.0.0.1", server.port());
    while (saturating.load(std::memory_order_relaxed)) {
      const double q0 = now_seconds();
      (void)cli.query_sum();
      sat_us.push_back((now_seconds() - q0) * 1e6);
    }
    cli.bye();
  });

  for (auto& t : threads) t.join();
  const double wall = now_seconds() - t0;
  saturating.store(false, std::memory_order_relaxed);
  sat_probe.join();
  if (!sat_us.empty()) {
    std::sort(sat_us.begin(), sat_us.end());
    pt.query_p99_sat_us = sat_us[(sat_us.size() * 99) / 100 == sat_us.size()
                                     ? sat_us.size() - 1
                                     : (sat_us.size() * 99) / 100];
  }

  const double streamed = static_cast<double>(clients * sets * set_size);
  pt.insert_rate = wall > 0 ? streamed / wall : 0;
  pt.parks = server.stats().parks;

  // Exactness + query cost on a quiesced server.
  net::Client probe;
  probe.connect("127.0.0.1", server.port());
  std::vector<double> q_us;
  double sum = 0;
  for (int q = 0; q < 21; ++q) {
    const double q0 = now_seconds();
    sum = probe.query_sum().sum;
    q_us.push_back((now_seconds() - q0) * 1e6);
  }
  probe.bye();
  std::sort(q_us.begin(), q_us.end());
  pt.query_p50_us = q_us[q_us.size() / 2];
  pt.exact = sum == streamed;

  server.stop();
  stream.stop();
  return pt;
}

}  // namespace

int main() {
  const std::size_t max_clients = env_or_sz("NET_CLIENTS", 4);
  const std::size_t sets = env_or_sz("NET_SETS", 16);
  const std::size_t set_size = env_or_sz("NET_SET_SIZE", 50000);

  benchutil::header(
      "Network ingest saturation (loopback, one lane per client)",
      "aggregate applied-entry rate through net::IngestServer vs client "
      "count; exactness of the server's Σ Ai gates the run");
  benchutil::note("clients swept 1.." + std::to_string(max_clients) +
                  ", " + std::to_string(sets) + " x " +
                  std::to_string(set_size) + " entries per client");

  std::printf(
      "clients\tinsert_rate\tquery_p50_us\tquery_p99_sat_us\tparks\texact\n");
  std::vector<SweepPoint> series;
  bool all_exact = true;
  for (std::size_t n = 1; n <= max_clients; n *= 2) {
    const auto pt = run_point(n, sets, set_size);
    all_exact = all_exact && pt.exact;
    series.push_back(pt);
    std::printf("%zu\t%s\t%.1f\t%.1f\t%llu\t%s\n", pt.clients,
                benchutil::rate(pt.insert_rate).c_str(), pt.query_p50_us,
                pt.query_p99_sat_us,
                static_cast<unsigned long long>(pt.parks),
                pt.exact ? "ok" : "VIOLATED");
  }

  std::string series_json = "[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s{\"clients\":%zu,\"insert_rate\":%.1f,"
                  "\"query_p50_us\":%.1f,\"query_p99_sat_us_ref\":%.1f,"
                  "\"parks\":%llu}",
                  i ? "," : "", series[i].clients, series[i].insert_rate,
                  series[i].query_p50_us, series[i].query_p99_sat_us,
                  static_cast<unsigned long long>(series[i].parks));
    series_json += buf;
  }
  series_json += "]";

  std::printf("\nresult: %s (Σ Ai %s across %zu sweep points)\n",
              all_exact ? "PASS" : "FAIL",
              all_exact ? "exact" : "DIVERGED", series.size());
  std::printf("BENCH_JSON {\"bench\":\"net_ingest\",\"sets\":%zu,"
              "\"set_size\":%zu,\"exact_ratio\":%.1f,\"series\":%s,"
              "\"exact\":%s}\n",
              sets, set_size, all_exact ? 1.0 : 0.0, series_json.c_str(),
              all_exact ? "true" : "false");
  return all_exact ? 0 : 1;
}

#else  // !__linux__

int main() {
  std::printf("bench_net_ingest: the epoll ingest server is Linux-only\n");
  return 0;
}

#endif
