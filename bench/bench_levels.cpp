// Ablation A2 — hierarchy depth.
//
// Same stream into hierarchies of N = 1..6 levels (N = 1 is a plain
// hypersparse matrix with per-set materialization — the non-hierarchical
// baseline the paper's cascade replaces). Shows where the hierarchy wins
// and that the win grows with accumulated matrix size.
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"

namespace {

double measure_levels(std::size_t levels, std::size_t sets) {
  cluster::WorkloadSpec w;
  w.sets = sets;
  w.set_size = 100000;
  w.scale = 17;
  w.seed = 99;

  gen::PowerLawParams pp;
  pp.scale = w.scale;
  pp.dim = w.dim;
  pp.seed = w.seed;
  gen::PowerLawGenerator g(pp);

  gbx::Tuples<double> batch;
  double busy = 0;

  if (levels == 1) {
    gbx::Matrix<double> m(w.dim, w.dim);
    for (std::size_t s = 0; s < w.sets; ++s) {
      batch.clear();
      g.batch(w.set_size, batch);
      const double t0 = omp_get_wtime();
      m.append(batch);
      m.materialize();
      busy += omp_get_wtime() - t0;
    }
  } else {
    hier::HierMatrix<double> h(w.dim, w.dim,
                               hier::CutPolicy::geometric(levels, 1u << 13, 8));
    for (std::size_t s = 0; s < w.sets; ++s) {
      batch.clear();
      g.batch(w.set_size, batch);
      const double t0 = omp_get_wtime();
      h.update(batch);
      busy += omp_get_wtime() - t0;
    }
  }
  return static_cast<double>(w.entries_per_instance()) / busy;
}

}  // namespace

int main() {
  // Single-threaded, like one of the paper's processes (see bench_cut_sweep).
  omp_set_num_threads(1);
  benchutil::header(
      "A2 — hierarchy depth ablation",
      "power-law stream in 100K-entry sets; single-instance (single-"
      "threaded) update rate vs number of levels (N=1 = direct updates)");

  std::printf("levels\trate_2M_entries\trate_6M_entries\n");
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const double r_small = measure_levels(n, 20);
    const double r_large = measure_levels(n, 60);
    std::printf("%zu\t%s\t%s\n", n, benchutil::rate(r_small).c_str(),
                benchutil::rate(r_large).c_str());
  }
  benchutil::note(
      "expected shape: N=1 degrades as the accumulated matrix grows "
      "(every set merges into an ever-bigger structure); N>=3 holds its "
      "rate, and the N=1 vs N>=3 gap widens from the 2M to the 6M column.");
  return 0;
}
