// Experiment E10 — out-of-core tiering: ingest past the resident budget.
//
// The paper's hierarchy keeps the bottom (coldest, largest) level exactly
// where an Accumulo tablet server would keep it: on disk. This bench
// streams a Kronecker batch sequence whose in-memory footprint is at
// least 3x the resident budget B through a demoting HierMatrix backed by
// a file BlockStore, against an identical in-memory run:
//
//   mem — plain HierMatrix, no tier: measures baseline_rate and the full
//         resident footprint M (which fixes B = M/3 unless overridden).
//   ooc — demotion enabled into a single-file store; every batch pays
//         update() AND enforce_residency(B) inside the timed section, so
//         serialization + block writes are charged to the ingest rate.
//
// Gates (exit non-zero on violation):
//   * oversubscribed — the in-memory footprint M is >= 3x the budget B
//     actually enforced (the bench is meaningless otherwise).
//   * bounded — at every quarter-cadence sweep point, resident bytes are
//     <= B, or the bottom level is empty (enforcement moved every
//     compressed byte out and only warm-capacity buffers remain).
//   * exactness — at every sweep point and at the end, the demoted
//     matrix's full materialization and point probes are BIT-IDENTICAL
//     to an untimed in-memory twin fed the same batches (Kronecker
//     values are small exact doubles, so the plus-fold is associative
//     bit-for-bit).
//   * governed — the tier actually demoted (demotions >= 1, bytes on
//     disk at the end).
//   * throughput — ooc ingest rate >= OUTOFCORE_MIN_RATE_RATIO
//     (default 0.8) of the in-memory rate.
//
// Env knobs: OOC_SETS, OOC_SET_SIZE, OOC_SCALE, OOC_BUDGET_BYTES,
// OOC_CACHE_BYTES, OOC_DIR, OUTOFCORE_MIN_RATE_RATIO.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_util.hpp"
#include "gen/kronecker.hpp"
#include "hier/hier.hpp"

namespace {

using Clock = std::chrono::steady_clock;

std::size_t env_or(const char* name, std::size_t dflt) {
  if (const char* v = std::getenv(name)) return std::strtoull(v, nullptr, 10);
  return dflt;
}

double env_or_d(const char* name, double dflt) {
  if (const char* v = std::getenv(name)) return std::atof(v);
  return dflt;
}

hier::CutPolicy cuts() { return hier::CutPolicy::geometric(4, 1u << 13, 8); }

std::string store_path() {
  if (const char* v = std::getenv("OOC_DIR"))
    return std::string(v) + "/bench_outofcore.blocks";
  const auto p = std::filesystem::temp_directory_path() /
                 ("bench_outofcore." + std::to_string(::getpid()) + ".blocks");
  return p.string();
}

}  // namespace

int main() {
  const std::size_t sets = env_or("OOC_SETS", 30);
  const std::size_t set_size = env_or("OOC_SET_SIZE", 50000);
  const int scale = static_cast<int>(env_or("OOC_SCALE", 14));
  const double min_ratio = env_or_d("OUTOFCORE_MIN_RATE_RATIO", 0.8);
  const gbx::Index dim = gbx::Index{1} << scale;

  benchutil::header(
      "E10 — out-of-core tiering (hier::DemotedTier over store::BlockStore)",
      "stream >= 3x the resident budget; bit-exact reads at >= 0.8x the "
      "in-memory ingest rate");
  benchutil::note("workload: " + std::to_string(sets) + " sets x " +
                  std::to_string(set_size) + " entries, Kronecker scale-" +
                  std::to_string(scale));

  // Deterministic pre-generated stream: both runs ingest identical data.
  gen::KroneckerParams kp;
  kp.scale = scale;
  kp.seed = 20200316;
  gen::KroneckerGenerator g(kp);
  std::vector<gbx::Tuples<double>> batches(sets);
  std::uint64_t entries = 0;
  for (auto& b : batches) {
    g.batch<double>(set_size, b);
    entries += b.size();
  }

  // Pass 1 — in-memory baseline: rate and full resident footprint M.
  double mem_seconds = 0;
  std::size_t mem_footprint = 0;
  {
    hier::HierMatrix<double> mem(dim, dim, cuts());
    for (const auto& b : batches) {
      const auto t0 = Clock::now();
      mem.update(b);
      mem_seconds += std::chrono::duration<double>(Clock::now() - t0).count();
    }
    mem_footprint = mem.memory_bytes();
  }
  const double baseline_rate =
      mem_seconds > 0 ? static_cast<double>(entries) / mem_seconds : 0;

  const std::size_t budget = env_or(
      "OOC_BUDGET_BYTES", std::max<std::size_t>(mem_footprint / 3, 1));
  const double oversub =
      static_cast<double>(mem_footprint) / static_cast<double>(budget);

  // Pass 2 — demoting run (timed) in lockstep with an untimed in-memory
  // twin that serves as the bit-exactness oracle at every sweep point.
  const std::string path = store_path();
  std::filesystem::remove(path);
  store::BlockStoreConfig scfg;
  scfg.cache_budget_bytes = env_or("OOC_CACHE_BYTES", 8u << 20);
  auto store = store::make_file_block_store(path, scfg);

  hier::HierMatrix<double> ooc(dim, dim, cuts());
  ooc.enable_demotion(store.get());
  hier::HierMatrix<double> twin(dim, dim, cuts());

  double ooc_seconds = 0;
  std::uint64_t resident_violations = 0;
  std::uint64_t probe_mismatches = 0;
  std::uint64_t sweep_mismatches = 0;
  std::uint64_t sweeps = 0;
  const std::size_t sweep_every = std::max<std::size_t>(sets / 4, 1);

  for (std::size_t k = 0; k < batches.size(); ++k) {
    const auto t0 = Clock::now();
    ooc.update(batches[k]);
    ooc.enforce_residency(budget);
    ooc_seconds += std::chrono::duration<double>(Clock::now() - t0).count();
    twin.update(batches[k]);

    if ((k + 1) % sweep_every != 0 && k + 1 != batches.size()) continue;
    ++sweeps;
    // Residency: enforcement either met the budget or moved every
    // compressed byte out (only warm-capacity buffers remain resident).
    if (ooc.memory_bytes() > budget &&
        !ooc.level(ooc.num_levels() - 1).empty())
      ++resident_violations;
    // Exactness, full and pointwise, against the twin at this epoch.
    const auto snap = ooc.freeze();
    const auto want = twin.freeze().to_matrix();
    if (!gbx::equal(snap.to_matrix(), want) || snap.nvals() != want.nvals())
      ++sweep_mismatches;
    std::size_t probed = 0;
    want.for_each([&](gbx::Index i, gbx::Index j, double v) {
      if (probed >= 256 || (i ^ j) % 5 != 0) return;
      ++probed;
      const auto got = snap.extract_element(i, j);
      if (!got || *got != v) ++probe_mismatches;
    });
  }

  const double ingest_rate =
      ooc_seconds > 0 ? static_cast<double>(entries) / ooc_seconds : 0;
  const double ratio = baseline_rate > 0 ? ingest_rate / baseline_rate : 0;
  const auto tstats = ooc.tier().stats();
  const std::uint64_t store_bytes = ooc.store_bytes();
  const std::uint64_t file_bytes = std::filesystem::exists(path)
                                       ? std::filesystem::file_size(path)
                                       : 0;

  std::printf("\nrun\tresident_final\tstore_bytes\tingest_rate\n");
  std::printf("mem\t%zu\t0\t%s\n", mem_footprint,
              benchutil::rate(baseline_rate).c_str());
  std::printf("ooc\t%zu\t%llu\t%s\n", ooc.memory_bytes(),
              static_cast<unsigned long long>(store_bytes),
              benchutil::rate(ingest_rate).c_str());
  std::printf(
      "\nbudget B = %zu bytes (mem-footprint/3 unless OOC_BUDGET_BYTES)"
      "\noversubscription M/B = %.2fx (need >= 3)"
      "\ndemotions=%llu compactions=%llu entries_demoted=%llu"
      "\nstore file: %llu bytes on disk (%s)"
      "\nthroughput ratio ooc/mem: %.3f (floor %.2f)\n",
      budget, oversub, static_cast<unsigned long long>(tstats.demotions),
      static_cast<unsigned long long>(tstats.compactions),
      static_cast<unsigned long long>(tstats.entries_demoted),
      static_cast<unsigned long long>(file_bytes), path.c_str(), ratio,
      min_ratio);

  const bool oversubscribed = oversub >= 3.0;
  const bool bounded = resident_violations == 0;
  const bool exact = sweep_mismatches == 0 && probe_mismatches == 0;
  const bool governed = tstats.demotions >= 1 && store_bytes > 0;
  const bool fast = ratio >= min_ratio;
  const bool pass = oversubscribed && bounded && exact && governed && fast;

  if (!oversubscribed)
    std::printf("FAIL: footprint only %.2fx the budget — raise OOC_SETS or "
                "lower OOC_BUDGET_BYTES\n", oversub);
  if (!bounded)
    std::printf("FAIL: %llu sweep points over budget with a non-empty "
                "bottom level\n",
                static_cast<unsigned long long>(resident_violations));
  if (!exact)
    std::printf("FAIL: %llu sweep / %llu probe mismatches vs the in-memory "
                "twin\n",
                static_cast<unsigned long long>(sweep_mismatches),
                static_cast<unsigned long long>(probe_mismatches));
  if (!governed) std::printf("FAIL: tier performed no demotion\n");
  if (!fast)
    std::printf("FAIL: demoting ingest rate ratio %.3f below %.2f\n", ratio,
                min_ratio);

  std::string json =
      "{\"bench\":\"outofcore\",\"sets\":" + std::to_string(sets) +
      ",\"set_size\":" + std::to_string(set_size) +
      ",\"budget_bytes\":" + std::to_string(budget) +
      ",\"mem_footprint\":" + std::to_string(mem_footprint) +
      ",\"oversubscription\":" + std::to_string(oversub) +
      ",\"resident_final\":" + std::to_string(ooc.memory_bytes()) +
      ",\"store_bytes\":" + std::to_string(store_bytes) +
      ",\"file_bytes\":" + std::to_string(file_bytes) +
      ",\"baseline_rate\":" + std::to_string(baseline_rate) +
      ",\"ingest_rate\":" + std::to_string(ingest_rate) +
      ",\"rate_ratio\":" + std::to_string(ratio) +
      ",\"demotions\":" + std::to_string(tstats.demotions) +
      ",\"compactions\":" + std::to_string(tstats.compactions) +
      ",\"entries_demoted\":" + std::to_string(tstats.entries_demoted) +
      ",\"sweeps\":" + std::to_string(sweeps) +
      ",\"identical\":" + (exact ? "true" : "false") +
      ",\"pass\":" + (pass ? "true" : "false") + "}";
  std::printf("BENCH_JSON %s\n", json.c_str());

  std::filesystem::remove(path);
  return pass ? 0 : 1;
}
