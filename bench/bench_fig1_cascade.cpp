// Experiment E1 — Fig. 1 of the paper: hierarchy mechanics.
//
// Streams power-law batches into a 4-level hierarchical hypersparse
// matrix and records, per update set: per-level entry occupancy and
// cumulative fold counts. The table demonstrates Fig. 1's claim that
// "hierarchical hypersparse matrices ensure that the majority of updates
// are performed in fast memory": the fast level absorbs every update and
// folds to deeper (slower) levels orders of magnitude less often.
#include <cstdio>

#include "bench_util.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

int main() {
  benchutil::header(
      "E1 / Fig. 1 — hierarchical hypersparse matrix cascade mechanics",
      "4-level hierarchy, geometric cuts c_i = 2^18 * 2^(i-1); power-law "
      "stream (scale 17, alpha 1.3) in sets of 100,000 entries");

  gen::PowerLawParams pp;
  pp.scale = 17;
  pp.alpha = 1.3;
  pp.dim = gbx::kIPv4Dim;
  pp.seed = 20200316;
  gen::PowerLawGenerator g(pp);

  // c1 > set size so the fast level visibly accumulates several sets
  // before each fold (with c1 below the set size, every set cascades
  // immediately and the L1 occupancy column reads zero at sample time).
  // Growth ratio 2 keeps the deeper cuts within this run's reach so the
  // fold-count decay down the hierarchy is visible in one table.
  const auto cuts = hier::CutPolicy::geometric(4, 1u << 18, 2);
  hier::HierMatrix<double> h(pp.dim, pp.dim, cuts);

  benchutil::note("cuts: c1=" + std::to_string(cuts.cut(0)) +
                  " c2=" + std::to_string(cuts.cut(1)) +
                  " c3=" + std::to_string(cuts.cut(2)) + " (top unbounded)");
  std::printf(
      "set\tentries_in\tL1_entries\tL2_entries\tL3_entries\tL4_entries"
      "\tL1_folds\tL2_folds\tL3_folds\n");

  const std::size_t kSets = 50;
  const std::size_t kSetSize = 100000;
  for (std::size_t s = 1; s <= kSets; ++s) {
    h.update(g.batch<double>(kSetSize));
    if (s % 5 == 0 || s == 1) {
      const auto& st = h.stats();
      std::printf("%zu\t%llu\t%zu\t%zu\t%zu\t%zu\t%llu\t%llu\t%llu\n", s,
                  static_cast<unsigned long long>(st.entries_appended),
                  h.level_entries(0), h.level_entries(1), h.level_entries(2),
                  h.level_entries(3),
                  static_cast<unsigned long long>(st.level[0].folds),
                  static_cast<unsigned long long>(st.level[1].folds),
                  static_cast<unsigned long long>(st.level[2].folds));
    }
  }

  const auto& st = h.stats();
  const auto snap = h.snapshot();
  std::printf("\nfinal: streamed=%llu entries, logical nnz=%zu\n",
              static_cast<unsigned long long>(st.entries_appended),
              snap.nvals());
  for (std::size_t i = 0; i + 1 < h.num_levels(); ++i) {
    std::printf(
        "level %zu: folds=%llu entries_folded=%llu max_entries=%llu "
        "fold_ratio=%.4f\n",
        i + 1, static_cast<unsigned long long>(st.level[i].folds),
        static_cast<unsigned long long>(st.level[i].entries_folded),
        static_cast<unsigned long long>(st.level[i].max_entries),
        st.fold_ratio(i));
  }
  benchutil::note(
      "expected shape (paper Fig. 1): every update lands in L1; each level "
      "folds ~ratio x less often than the level above, so slow-memory "
      "merges see a small fraction of the raw update traffic.");
  return 0;
}
