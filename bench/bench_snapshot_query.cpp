// Experiment E7 — query-while-ingest: insert-rate cost of concurrent
// epoch-snapshot readers.
//
// The seed system had to quiesce the stream before any analysis; the
// snapshot engine promises analytics *during* ingest at a bounded cost.
// This bench quantifies that cost: a ParallelStream pumps a Kronecker
// stream while N reader threads loop { snapshot -> Σ Ai -> triangle
// count } at a realistic analyst cadence, and the aggregate insert rate
// (Σ_p entries_p / busy_p — the Fig. 2 metric, measured strictly inside
// HierMatrix::update) is compared against a reader-free baseline run of
// the identical workload.
//
// Acceptance target: < 30% degradation with 4 concurrent readers. The
// check is enforced only when the host has enough hardware threads to
// actually run writers and readers in parallel (lanes + readers); on
// smaller hosts pure CPU oversubscription would dominate the number and
// say nothing about the snapshot path, so the result is reported but
// not gated. Override the threshold with SNAPQ_MAX_DEGRADATION.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "algo/algo.hpp"
#include "bench_util.hpp"
#include "gen/kronecker.hpp"
#include "hier/hier.hpp"

namespace {

struct RunResult {
  double aggregate_rate = 0;
  double wall_seconds = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t triangles_last = 0;
};

RunResult run(std::size_t lanes, std::size_t readers, std::size_t sets,
              std::size_t set_size, gbx::Index dim, std::uint64_t seed) {
  hier::InstanceArray<double> array(lanes, dim, dim,
                                    hier::CutPolicy::geometric(4, 1u << 13, 8));
  hier::ParallelStream<double> engine(array);
  hier::SnapshotEngine<hier::ParallelStream<double>> snapper(engine);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> triangles{0};
  std::vector<std::thread> analysts;
  for (std::size_t r = 0; r < readers; ++r) {
    analysts.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto snap = snapper.acquire();
        // Σ Ai without materialization, then a real graph kernel on the
        // materialized union — the paper's "analysis step", live.
        (void)snap.reduce();
        triangles.store(algo::triangle_count(snap.to_matrix()),
                        std::memory_order_relaxed);
        // Analyst cadence: periodic, not a hot spin.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  auto report = engine.pump(sets, set_size, [&](std::size_t p) {
    gen::KroneckerParams kp;
    kp.scale = 14;
    kp.seed = seed + p;
    return gen::KroneckerGenerator(kp);
  });
  done.store(true);
  for (auto& t : analysts) t.join();

  RunResult r;
  r.aggregate_rate = report.aggregate_rate;
  r.wall_seconds = report.wall_seconds;
  r.snapshots = snapper.snapshots_taken();
  r.triangles_last = triangles.load();
  return r;
}

}  // namespace

int main() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t lanes = 2;
  const std::size_t readers = 4;
  const std::size_t sets = 12;
  const std::size_t set_size = 50000;
  const gbx::Index dim = gbx::Index{1} << 14;
  const std::uint64_t seed = 20200316;

  double max_degradation = 0.30;
  if (const char* env = std::getenv("SNAPQ_MAX_DEGRADATION"))
    max_degradation = std::atof(env);

  benchutil::header(
      "E7 — query-while-ingest (hier::SnapshotEngine over ParallelStream)",
      "aggregate insert rate with concurrent snapshot+analytics readers");
  benchutil::note("hardware concurrency: " + std::to_string(hw));
  benchutil::note("workload: " + std::to_string(lanes) + " lanes x " +
                  std::to_string(sets) + " sets x " +
                  std::to_string(set_size) + " entries, Kronecker scale-14");
  benchutil::note("readers loop: snapshot -> reduce(Σ Ai) -> triangle count");

  std::printf("\nreaders\tsnapshots\twall_s\tagg_rate\ttriangles\n");

  const auto baseline = run(lanes, 0, sets, set_size, dim, seed);
  std::printf("0\t%llu\t%.3f\t%s\t-\n",
              static_cast<unsigned long long>(baseline.snapshots),
              baseline.wall_seconds,
              benchutil::rate(baseline.aggregate_rate).c_str());
  std::fflush(stdout);

  const auto loaded = run(lanes, readers, sets, set_size, dim, seed);
  std::printf("%zu\t%llu\t%.3f\t%s\t%llu\n", readers,
              static_cast<unsigned long long>(loaded.snapshots),
              loaded.wall_seconds,
              benchutil::rate(loaded.aggregate_rate).c_str(),
              static_cast<unsigned long long>(loaded.triangles_last));

  const double degradation =
      baseline.aggregate_rate > 0
          ? 1.0 - loaded.aggregate_rate / baseline.aggregate_rate
          : 0.0;
  // pump() runs one producer thread per lane on top of the lane workers.
  const bool enough_cores = hw >= 2 * lanes + readers;
  const bool pass = degradation < max_degradation;

  std::printf("\ninsert-rate degradation with %zu readers: %.1f%% "
              "(threshold %.0f%%)\n",
              readers, degradation * 100.0, max_degradation * 100.0);
  if (!enough_cores)
    std::printf("note: only %u hardware threads for %zu worker+producer+"
                "reader threads — oversubscription dominates, threshold "
                "not enforced on this host\n",
                hw, 2 * lanes + readers);

  std::string json =
      "{\"bench\":\"snapshot_query\",\"hw\":" + std::to_string(hw) +
      ",\"lanes\":" + std::to_string(lanes) +
      ",\"readers\":" + std::to_string(readers) +
      ",\"baseline_agg_rate\":" + std::to_string(baseline.aggregate_rate) +
      ",\"loaded_agg_rate\":" + std::to_string(loaded.aggregate_rate) +
      ",\"snapshots\":" + std::to_string(loaded.snapshots) +
      ",\"degradation\":" + std::to_string(degradation) +
      ",\"threshold\":" + std::to_string(max_degradation) +
      ",\"enforced\":" + (enough_cores ? "true" : "false") +
      ",\"pass\":" + (pass ? "true" : "false") + "}";
  std::printf("BENCH_JSON %s\n", json.c_str());

  if (enough_cores && !pass) return 1;
  return 0;
}
