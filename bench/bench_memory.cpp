// Ablation A5 — memory footprint across representations.
//
// "Streaming updates of hypersparse matrices put enormous pressure on
// the memory hierarchy" — this bench reports resident bytes per stored
// entry for each system fed the same stream: hierarchical GraphBLAS,
// direct GraphBLAS, D4M associative arrays (dictionary overhead), the
// LSM store (run + memtable overhead) and the B+tree (node overhead).
#include <cstdio>

#include "assoc/assoc.hpp"
#include "bench_util.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"
#include "store/store.hpp"

namespace {

gbx::Tuples<double> make_stream(std::size_t n) {
  gen::PowerLawParams pp;
  pp.scale = 17;
  pp.seed = 7;
  gen::PowerLawGenerator g(pp);
  return g.batch<double>(n);
}

void row(const char* name, std::size_t bytes, std::size_t entries) {
  std::printf("%-18s %10.1f MB %12zu entries %8.1f B/entry\n", name,
              static_cast<double>(bytes) / 1048576.0, entries,
              entries ? static_cast<double>(bytes) / static_cast<double>(entries)
                      : 0.0);
}

}  // namespace

int main() {
  benchutil::header(
      "A5 — memory footprint per representation",
      "2M-entry power-law stream (scale 17, IPv4 space) into each system; "
      "bytes per distinct stored entry");

  const auto stream = make_stream(2000000);

  {
    hier::HierMatrix<double> h(gbx::kIPv4Dim, gbx::kIPv4Dim,
                               hier::CutPolicy::geometric(4, 1u << 13, 8));
    for (std::size_t off = 0; off < stream.size(); off += 100000) {
      gbx::Tuples<double> b;
      for (std::size_t k = off; k < off + 100000 && k < stream.size(); ++k)
        b.push_back(stream[k].row, stream[k].col, stream[k].val);
      h.update(b);
    }
    row("hier_gbx", h.memory_bytes(), h.snapshot().nvals());
  }
  {
    gbx::Matrix<double> m(gbx::kIPv4Dim, gbx::kIPv4Dim);
    m.append(stream);
    m.materialize();
    row("direct_gbx", m.memory_bytes(), m.nvals());
  }
  {
    assoc::AssocArray<double> a(gbx::kIPv4Dim);
    for (const auto& e : stream)
      a.insert(std::to_string(e.row), std::to_string(e.col), e.val);
    a.materialize();
    row("d4m_assoc", a.memory_bytes(), a.nvals());
  }
  {
    store::LsmStore s;
    for (const auto& e : stream) s.insert({e.row, e.col}, e.val);
    // LSM memory: runs + memtable, estimated from stored fragments.
    std::size_t frag = s.memtable_entries() * 48;  // map node overhead
    s.major_compact();
    frag += s.size() * sizeof(store::KV);
    row("lsm(accumulo)", frag, s.size());
  }
  {
    store::BTreeStore t;
    for (const auto& e : stream) t.insert({e.row, e.col}, e.val);
    // B+tree memory: nodes at ~50% fill, 24B/entry payload + pointers.
    const std::size_t approx =
        t.size() * (sizeof(store::Key) + sizeof(store::Value)) * 2;
    row("btree(oltp)", approx, t.size());
  }

  benchutil::note(
      "expected shape: hierarchical and direct GraphBLAS sit near the "
      "DCSR floor (~24-32 B/entry); D4M pays the string dictionaries; "
      "the stores pay tree/run overheads. The hierarchy's extra levels "
      "cost only the duplicated-coordinate margin.");
  return 0;
}
