// Ingest hot path — fused radix fold pipeline vs the seed (pre-PR)
// pipeline, on identical Kronecker streams.
//
// The paper's headline number is raw streaming insert rate, and the
// per-update cost is dominated by the cascade fold: sort the pending
// batch, fold duplicates, merge into the next level. This bench runs the
// SAME workload through both fold pipelines (the legacy one is kept
// callable behind gbx::set_fold_pipeline) and gates the PR:
//
//   * single lane: fused fold throughput must be >= 1.5x legacy
//     (BENCH_INGEST_MIN_SPEEDUP to override, like the delta bench's
//     BENCH_DELTA_MIN_SPEEDUP);
//   * exactness: Σ Ai after the fused run must be bit-identical to
//     direct accumulation into one flat matrix (and to the legacy run);
//   * P lanes: hier::pump under both pipelines, reported for the
//     trajectory (the Fig. 2 shape bench remains bench_parallel_stream).
//
// Workload: the paper's set granularity (100K-entry batches; INGEST_SETS
// and INGEST_SET_SIZE adjust for CI scale), scale-17 Kronecker stream,
// geometric cuts — the same shape bench_parallel_stream measures.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "gbx/fold.hpp"
#include "gbx/reduce.hpp"
#include "gen/kronecker.hpp"
#include "hier/hier.hpp"

namespace {

double env_or(const char* name, double fallback) {
  const char* s = std::getenv(name);
  return (s != nullptr && *s != '\0') ? std::atof(s) : fallback;
}

std::size_t env_or_sz(const char* name, std::size_t fallback) {
  const char* s = std::getenv(name);
  return (s != nullptr && *s != '\0')
             ? static_cast<std::size_t>(std::atoll(s))
             : fallback;
}

gen::KroneckerGenerator make_generator(std::size_t instance,
                                       std::uint64_t base_seed) {
  gen::KroneckerParams kp;
  kp.scale = 17;
  kp.seed = base_seed + instance;
  return gen::KroneckerGenerator(kp);
}

struct LaneRun {
  double busy_seconds = 0;
  std::uint64_t entries = 0;
  double sum = 0;            ///< Σ Ai, reduced exactly
  std::size_t nvals = 0;     ///< distinct coordinates
  double rate() const {
    return busy_seconds > 0 ? static_cast<double>(entries) / busy_seconds : 0;
  }
};

/// Stream `sets` pre-generated batches through one HierMatrix under the
/// given pipeline; only HierMatrix::update is timed (generation happens
/// up front, the paper's untimed packet-capture role).
LaneRun run_single_lane(gbx::FoldPipeline pipeline,
                        const std::vector<gbx::Tuples<double>>& batches,
                        const hier::CutPolicy& cuts, gbx::Index dim) {
  gbx::set_fold_pipeline(pipeline);
  hier::HierMatrix<double> m(dim, dim, cuts);
  LaneRun r;
  for (const auto& b : batches) {
    const auto t0 = std::chrono::steady_clock::now();
    m.update(b);
    r.busy_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    r.entries += b.size();
  }
  auto sum = m.snapshot();
  r.sum = gbx::reduce_scalar<gbx::PlusMonoid<double>>(sum);
  r.nvals = sum.nvals();
  return r;
}

}  // namespace

int main() {
  const std::size_t sets = env_or_sz("INGEST_SETS", 30);
  const std::size_t set_size = env_or_sz("INGEST_SET_SIZE", 100000);
  const double min_speedup = env_or("BENCH_INGEST_MIN_SPEEDUP", 1.5);
  const std::uint64_t seed = 20200316;
  const gbx::Index dim = gbx::Index{1} << 17;
  const auto cuts = hier::CutPolicy::geometric(4, 1u << 13, 8);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  benchutil::header(
      "ingest hot path — fused radix fold vs seed pipeline",
      "same Kronecker stream through both fold pipelines; gate: fused "
      "single-lane fold throughput >= " + std::to_string(min_speedup) +
          "x legacy AND bit-identical Σ Ai vs direct accumulation");
  benchutil::note("workload: " + std::to_string(sets) + " sets x " +
                  std::to_string(set_size) + " entries, scale-17 Kronecker");

  // Pre-generate the stream once; both pipelines and the direct
  // reference consume the identical batches.
  std::vector<gbx::Tuples<double>> batches;
  batches.reserve(sets);
  {
    auto gen = make_generator(0, seed);
    for (std::size_t s = 0; s < sets; ++s)
      batches.push_back(gen.batch<double>(set_size));
  }

  // Direct accumulation reference: one flat matrix, one fold at the end.
  double direct_sum = 0;
  std::size_t direct_nvals = 0;
  {
    gbx::Matrix<double> acc(dim, dim);
    for (const auto& b : batches) acc.append(b);
    direct_sum = gbx::reduce_scalar<gbx::PlusMonoid<double>>(acc);
    direct_nvals = acc.nvals();
  }

  // Warm each pipeline once (first-touch page faults, scratch growth),
  // then measure the pipelines ALTERNATING and keep each one's best
  // rep: background load and thermal drift hit both sides equally
  // instead of whichever happens to run last. INGEST_REPS overrides.
  const std::size_t reps = env_or_sz("INGEST_REPS", 2);
  std::printf("\n-- single lane: fold throughput (updates/s, insert time only; "
              "best of %zu alternating reps) --\n", reps);
  (void)run_single_lane(gbx::FoldPipeline::kLegacy, batches, cuts, dim);
  (void)run_single_lane(gbx::FoldPipeline::kFused, batches, cuts, dim);
  LaneRun legacy, fused;
  std::uint64_t scratch_grows = 0;  // fused reps only: the zero-alloc claim
  for (std::size_t r = 0; r < reps; ++r) {
    const auto l = run_single_lane(gbx::FoldPipeline::kLegacy, batches, cuts, dim);
    const auto grow_before = gbx::ScratchPool::local().grow_count();
    const auto f = run_single_lane(gbx::FoldPipeline::kFused, batches, cuts, dim);
    scratch_grows += gbx::ScratchPool::local().grow_count() - grow_before;
    if (r == 0 || l.busy_seconds < legacy.busy_seconds) legacy = l;
    if (r == 0 || f.busy_seconds < fused.busy_seconds) fused = f;
  }

  const double speedup = legacy.rate() > 0 ? fused.rate() / legacy.rate() : 0;
  std::printf("legacy\t%s updates/s (%.3fs busy)\n",
              benchutil::rate(legacy.rate()).c_str(), legacy.busy_seconds);
  std::printf("fused\t%s updates/s (%.3fs busy)\n",
              benchutil::rate(fused.rate()).c_str(), fused.busy_seconds);
  std::printf("speedup\t%.2fx (gate >= %.2fx)\n", speedup, min_speedup);
  std::printf("scratch arena grows during measured fused run: %llu\n",
              static_cast<unsigned long long>(scratch_grows));

  const bool identical = fused.sum == direct_sum &&
                         fused.nvals == direct_nvals &&
                         legacy.sum == direct_sum &&
                         legacy.nvals == direct_nvals;
  std::printf("Σ Ai fused=%.17g legacy=%.17g direct=%.17g nvals %zu/%zu/%zu "
              "-> %s\n",
              fused.sum, legacy.sum, direct_sum, fused.nvals, legacy.nvals,
              direct_nvals, identical ? "BIT-IDENTICAL" : "MISMATCH");

  // P-lane sweep (informational; the Fig. 2 gate lives in
  // bench_parallel_stream): hier::pump under both pipelines.
  std::printf("\n-- P lanes (hier::pump, generation untimed) --\n");
  std::printf("P\tlegacy_agg\tfused_agg\tspeedup\n");
  std::string lanes_json = "[";
  std::vector<std::size_t> counts;
  for (std::size_t p = 1; p <= hw; p *= 2) counts.push_back(p);
  if (counts.back() != hw) counts.push_back(hw);
  for (std::size_t idx = 0; idx < counts.size(); ++idx) {
    const std::size_t p = counts[idx];
    gbx::set_fold_pipeline(gbx::FoldPipeline::kLegacy);
    hier::InstanceArray<double> la(p, dim, dim, cuts);
    const auto lr = hier::pump<double>(la, sets, set_size, [&](std::size_t q) {
      return make_generator(q, seed + 777);
    });
    gbx::set_fold_pipeline(gbx::FoldPipeline::kFused);
    hier::InstanceArray<double> fa(p, dim, dim, cuts);
    const auto fr = hier::pump<double>(fa, sets, set_size, [&](std::size_t q) {
      return make_generator(q, seed + 777);
    });
    const double sp =
        lr.aggregate_rate > 0 ? fr.aggregate_rate / lr.aggregate_rate : 0;
    std::printf("%zu\t%s\t%s\t%.2fx\n", p,
                benchutil::rate(lr.aggregate_rate).c_str(),
                benchutil::rate(fr.aggregate_rate).c_str(), sp);
    lanes_json += std::string(idx ? "," : "") + "{\"instances\":" +
                  std::to_string(p) + ",\"legacy_agg_rate\":" +
                  std::to_string(lr.aggregate_rate) + ",\"fused_agg_rate\":" +
                  std::to_string(fr.aggregate_rate) + "}";
  }
  lanes_json += "]";
  gbx::set_fold_pipeline(gbx::FoldPipeline::kFused);

  const bool pass = speedup >= min_speedup && identical;
  std::printf("\nresult: %s (speedup %.2fx %s %.2fx, exactness %s)\n",
              pass ? "PASS" : "FAIL", speedup, speedup >= min_speedup ? ">=" : "<",
              min_speedup, identical ? "ok" : "VIOLATED");
  std::printf(
      "BENCH_JSON {\"bench\":\"ingest_hotpath\",\"sets\":%zu,"
      "\"set_size\":%zu,\"single\":{\"legacy_rate\":%.1f,\"fused_rate\":%.1f,"
      "\"speedup\":%.4f},\"min_speedup\":%.2f,\"identical\":%s,"
      "\"scratch_grows\":%llu,\"lanes\":%s}\n",
      sets, set_size, legacy.rate(), fused.rate(), speedup, min_speedup,
      identical ? "true" : "false",
      static_cast<unsigned long long>(scratch_grows), lanes_json.c_str());
  return pass ? 0 : 1;
}
