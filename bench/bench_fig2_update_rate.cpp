// Experiment E2 + E4 — Fig. 2 of the paper: update rate vs number of
// servers, hierarchical GraphBLAS vs prior systems.
//
// Two parts, clearly separated so nothing modelled is passed off as
// measured:
//
//  (1) MEASURED (this node): aggregate update rate for P = 1..cores
//      independent instances of each locally implemented system:
//        hier_gbx    — hierarchical hypersparse GraphBLAS (the paper)
//        direct_gbx  — non-hierarchical GraphBLAS updates
//        hier_d4m    — hierarchical D4M associative arrays (strings)
//        lsm         — Accumulo-model tablet store (memtable+runs+WAL)
//        btree       — OLTP-model B+tree with WAL (Oracle TPC-C shape)
//
//  (2) MODELLED (SuperCloud substitution, DESIGN.md §3): weak-scaling
//      extrapolation rate(S) = S * instances/node * per-instance rate *
//      measured intra-node efficiency, printed next to the *published*
//      rates the paper overlays in Fig. 2 (Hierarchical D4M, Accumulo
//      D4M, SciDB D4M, Accumulo, CrateDB, Oracle TPC-C).
//
// The reproduction target is the figure's shape: hierarchical GraphBLAS
// at the top by 1-2 orders of magnitude, near-linear scaling with
// servers, and a modelled 1,100-server point in the 10^10..10^11 band.
#include <omp.h>

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "store/published_rates.hpp"

namespace {

struct SystemRow {
  const char* name;
  cluster::RunResult r1;    // single instance
  cluster::RunResult rmax;  // node-saturating
  cluster::SuperCloudModel model;
};

cluster::WorkloadSpec workload(std::size_t sets, std::size_t set_size) {
  cluster::WorkloadSpec w;
  w.sets = sets;
  w.set_size = set_size;
  w.scale = 17;
  w.alpha = 1.3;
  w.dim = gbx::kIPv4Dim;
  w.seed = 20200316;
  return w;
}

}  // namespace

int main() {
  const int cores = omp_get_max_threads();
  const std::size_t pmax = static_cast<std::size_t>(cores);
  const auto cuts = hier::CutPolicy::geometric(4, 1u << 13, 8);

  benchutil::header(
      "E2+E4 / Fig. 2 — update rate vs number of servers",
      "measured multi-instance rates on this node, then SuperCloud "
      "weak-scaling extrapolation with published overlay series");
  benchutil::note("cores on this node: " + std::to_string(cores));

  // ---- Part 1: measured -------------------------------------------------
  // Streams must be long enough that accumulated state outgrows the cache
  // (the memory-hierarchy pressure the paper is about): the GraphBLAS
  // paths get 3M entries per instance, the per-row stores 2M.
  const auto w_fast = workload(30, 100000);  // 3M entries/instance
  const auto w_slow = workload(20, 100000);  // 2M entries/instance

  std::printf("\n-- measured: aggregate updates/s vs instances (this node) --\n");
  std::printf("system\t");
  std::vector<std::size_t> counts;
  for (std::size_t p = 1; p <= pmax; p *= 2) counts.push_back(p);
  if (counts.back() != pmax) counts.push_back(pmax);
  for (auto p : counts) std::printf("P=%zu\t", p);
  std::printf("\n");

  auto run_series = [&](const char* name, auto&& runner,
                        const cluster::WorkloadSpec& w) -> SystemRow {
    SystemRow row{};
    row.name = name;
    std::printf("%s\t", name);
    cluster::RunResult first{}, last{};
    for (auto p : counts) {
      auto r = runner(p, w);
      if (p == 1) first = r;
      last = r;
      std::printf("%s\t", benchutil::rate(r.aggregate_rate).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
    row.r1 = first;
    row.rmax = last;
    row.model = cluster::calibrate(first.aggregate_rate, last.instances,
                                   last.aggregate_rate, 28);
    return row;
  };

  std::vector<SystemRow> systems;
  systems.push_back(run_series(
      "hier_gbx",
      [&](std::size_t p, const cluster::WorkloadSpec& w) {
        return cluster::run_hier_gbx(p, w, cuts);
      },
      w_fast));
  systems.push_back(run_series(
      "direct_gbx",
      [&](std::size_t p, const cluster::WorkloadSpec& w) {
        return cluster::run_direct_gbx(p, w);
      },
      w_fast));
  systems.push_back(run_series(
      "hier_d4m",
      [&](std::size_t p, const cluster::WorkloadSpec& w) {
        return cluster::run_hier_assoc(p, w, cuts);
      },
      w_slow));
  systems.push_back(run_series(
      "lsm(accumulo)",
      [&](std::size_t p, const cluster::WorkloadSpec& w) {
        return cluster::run_lsm(p, w);
      },
      w_slow));
  systems.push_back(run_series(
      "btree(oltp)",
      [&](std::size_t p, const cluster::WorkloadSpec& w) {
        return cluster::run_btree(p, w);
      },
      w_slow));

  std::printf("\nper-instance rates and intra-node efficiency:\n");
  for (const auto& s : systems)
    std::printf("  %-14s rate_1=%s  rate_P=%s (P=%zu)  eff=%.2f\n", s.name,
                benchutil::rate(s.r1.aggregate_rate).c_str(),
                benchutil::rate(s.rmax.aggregate_rate).c_str(),
                s.rmax.instances, s.model.intra_node_efficiency);

  // ---- Part 2: modelled Fig. 2 series ------------------------------------
  std::printf(
      "\n-- modelled: Fig. 2 series, updates/s vs servers "
      "(28 instances/server, measured intra-node efficiency) --\n");
  std::vector<std::size_t> servers{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1100};
  std::printf("servers\t");
  for (const auto& s : systems) std::printf("%s\t", s.name);
  for (const auto& ps : store::kPublishedSeries)
    std::printf("pub:%.*s\t", static_cast<int>(ps.name.size()), ps.name.data());
  std::printf("pub:Oracle(TPC-C)\n");

  for (auto S : servers) {
    std::printf("%zu\t", S);
    for (const auto& s : systems)
      std::printf("%s\t", benchutil::rate(s.model.aggregate_rate(S)).c_str());
    for (const auto& ps : store::kPublishedSeries)
      std::printf("%s\t",
                  benchutil::rate(store::published_rate_at(ps, static_cast<double>(S))).c_str());
    std::printf("%s\n",
                benchutil::rate(store::published_rate_at(
                                    store::kOracleTpcc, static_cast<double>(S)))
                    .c_str());
  }

  // ---- Headline check -----------------------------------------------------
  const auto& hier_sys = systems.front();
  const double at1100 = hier_sys.model.aggregate_rate(1100);
  std::printf("\nheadline (E4): modelled hier_gbx at 1,100 servers / %zu "
              "instances = %s updates/s (paper: 7.5e+10)\n",
              hier_sys.model.instances(1100),
              benchutil::rate(at1100).c_str());
  std::printf("within Fig. 2 band [1e10, 1e12]: %s\n",
              (at1100 >= 1e10 && at1100 <= 1e12) ? "REPRODUCED" : "CHECK");
  benchutil::note(
      "published overlay series are literature values from the paper's "
      "citations, NOT measurements of this implementation (see "
      "store/published_rates.hpp).");
  return 0;
}
