// Experiment E8 — incremental analytics on snapshot deltas.
//
// The paper's analysis step materializes A = Σ Ai per query; PR 2 made
// it concurrent, this PR makes it incremental: successive snapshots
// share unchanged level blocks by identity, so an analytics pass only
// has to touch what changed. This bench measures that claim at the
// ISSUE's operating point — ≤1% churn between passes — and enforces
// both gates:
//
//   * speedup: engine.refresh() must be ≥ 5x faster than the
//     from-scratch pass (freeze → to_matrix → summarize → PageRank →
//     triangles) on the same snapshot (BENCH_DELTA_MIN_SPEEDUP
//     overrides the threshold).
//   * exactness: per window, the incremental Σ Ai must equal the full
//     materialization bit-for-bit (gbx::equal), the incremental
//     triangle count and summary cardinalities must match exactly, and
//     the warm-started PageRank must agree with the cold rerun to
//     within the convergence tolerance. Any mismatch fails the bench
//     regardless of speed.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "algo/algo.hpp"
#include "analytics/analytics.hpp"
#include "bench_util.hpp"
#include "gen/kronecker.hpp"
#include "hier/hier.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const gbx::Index dim = gbx::Index{1} << 14;
  const std::size_t warmup_batches = 6, warmup_size = 50000;
  const std::size_t windows = 8;
  const std::uint64_t seed = 20200316;

  double min_speedup = 5.0;
  if (const char* env = std::getenv("BENCH_DELTA_MIN_SPEEDUP"))
    min_speedup = std::atof(env);

  algo::PageRankOptions pr_opt;
  pr_opt.tol = 1e-10;
  pr_opt.max_iters = 200;

  hier::HierMatrix<double> h(dim, dim,
                             hier::CutPolicy::geometric(4, 1u << 13, 8));
  analytics::IncrementalOptions iopt;
  iopt.pagerank = pr_opt;
  iopt.pagerank_warm_start = true;
  analytics::IncrementalEngine<hier::HierMatrix<double>> eng(h, iopt);

  gen::KroneckerParams kp;
  kp.scale = 14;
  kp.seed = seed;
  gen::KroneckerGenerator g(kp);

  benchutil::header(
      "E8 — incremental analytics on snapshot deltas (hier::snapshot_diff)",
      "engine.refresh() vs from-scratch freeze -> Σ Ai -> summarize -> "
      "PageRank -> triangles at ≤1% churn");

  for (std::size_t s = 0; s < warmup_batches; ++s)
    h.update(g.batch<double>(warmup_size));
  eng.refresh();  // initial full recompute (builds all derived state)

  const std::size_t nnz = eng.sum().nvals();
  const std::size_t churn = std::max<std::size_t>(1, nnz / 200);  // 0.5%
  benchutil::note("graph: " + std::to_string(nnz) + " links, churn/window: " +
                  std::to_string(churn) + " entries (" +
                  std::to_string(100.0 * static_cast<double>(churn) /
                                 static_cast<double>(nnz)) +
                  "% of nnz)");
  benchutil::note("pagerank: warm-start, tol 1e-10; triangles: delta "
                  "neighborhood update");

  std::printf("\nwindow\tfull_ms\tincr_ms\tspeedup\treuse%%\ttouched\n");

  double full_total = 0, incr_total = 0;
  bool exact_sum = true, exact_tri = true, exact_counts = true;
  double pr_max_diff = 0;
  for (std::size_t w = 0; w < windows; ++w) {
    h.update(g.batch<double>(churn));

    // Incremental pass FIRST: its freeze pays the level-0 pending fold
    // for this window's churn, so the measured refresh cost includes it
    // (timing the full pass first would hand the incremental side a
    // pre-folded snapshot and overstate the gated speedup).
    const auto t_incr = std::chrono::steady_clock::now();
    const auto& rep = eng.refresh();
    const double incr_s = seconds_since(t_incr);

    // Full from-scratch pass (reference analyst) on the same state.
    const auto t_full = std::chrono::steady_clock::now();
    auto snap = h.freeze();
    auto full = snap.to_matrix();
    auto full_sum = analytics::summarize(full);
    auto full_pr = algo::pagerank(full, pr_opt);
    auto full_tri = algo::triangle_count(full);
    const double full_s = seconds_since(t_full);

    full_total += full_s;
    incr_total += incr_s;

    // --- exactness gates.
    exact_sum &= gbx::equal(eng.sum(), full);
    exact_tri &= eng.triangles() == full_tri;
    exact_counts &= eng.summary().links == full_sum.links &&
                    eng.summary().sources == full_sum.sources &&
                    eng.summary().destinations == full_sum.destinations &&
                    eng.summary().max_link == full_sum.max_link;
    std::map<gbx::Index, double> got;
    for (const auto& [v, r] : eng.pagerank().ranks) got[v] = r;
    for (const auto& [v, r] : full_pr.ranks) {
      auto it = got.find(v);
      const double diff = it == got.end() ? 1.0 : std::abs(it->second - r);
      pr_max_diff = std::max(pr_max_diff, diff);
    }

    std::printf("%zu\t%.2f\t%.2f\t%.1fx\t%.1f\t%zu\n", w, full_s * 1e3,
                incr_s * 1e3, full_s / incr_s,
                100.0 * rep.delta.reuse_ratio(), rep.added + rep.changed);
    std::fflush(stdout);
  }

  const double speedup = full_total / incr_total;
  const bool exact_pr = pr_max_diff < 1e-7;
  const bool pass =
      speedup >= min_speedup && exact_sum && exact_tri && exact_counts && exact_pr;

  std::printf("\naggregate: full %.1f ms vs incremental %.1f ms -> %.1fx "
              "(threshold %.1fx)\n",
              full_total * 1e3, incr_total * 1e3, speedup, min_speedup);
  std::printf("exact-match: sum=%s triangles=%s counts=%s "
              "pagerank_max_abs_diff=%.2e (tolerance-exact=%s)\n",
              exact_sum ? "yes" : "NO", exact_tri ? "yes" : "NO",
              exact_counts ? "yes" : "NO", pr_max_diff,
              exact_pr ? "yes" : "NO");

  std::string json =
      std::string("{\"bench\":\"snapshot_delta\"") +
      ",\"nnz\":" + std::to_string(nnz) +
      ",\"churn\":" + std::to_string(churn) +
      ",\"windows\":" + std::to_string(windows) +
      ",\"full_ms\":" + std::to_string(full_total * 1e3) +
      ",\"incr_ms\":" + std::to_string(incr_total * 1e3) +
      ",\"speedup\":" + std::to_string(speedup) +
      ",\"threshold\":" + std::to_string(min_speedup) +
      ",\"exact_sum\":" + (exact_sum ? "true" : "false") +
      ",\"exact_triangles\":" + (exact_tri ? "true" : "false") +
      ",\"exact_counts\":" + (exact_counts ? "true" : "false") +
      ",\"pagerank_max_abs_diff\":" + std::to_string(pr_max_diff) +
      ",\"pass\":" + (pass ? "true" : "false") + "}";
  std::printf("BENCH_JSON %s\n", json.c_str());

  return pass ? 0 : 1;
}
