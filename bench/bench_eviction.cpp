// Experiment E9 — memory-governed snapshot eviction under a slow reader.
//
// The scenario the governor exists for: Fig. 2-style batched Kronecker
// ingest into a ShardedHier while one analytics reader freezes an early
// epoch and then lags ≥8 epochs behind, pinning superseded block
// generations. Two identical single-driver runs:
//
//   OFF — governor present but with an unlimited budget (same code path,
//         no evictions): measures how many pinned bytes the laggard
//         accumulates, and the baseline update() throughput.
//   ON  — budget B (default: a quarter of the OFF peak), spill enabled:
//         the governor must materialize-and-release the laggard.
//
// Gates (exit non-zero on violation):
//   * bounded memory — ON peak identity-deduped pinned bytes stay
//     ≤ B + slack, where slack is one block per shard (between two
//     enforcement points each shard can supersede at most its current
//     fold chain, dominated by its largest block; EVICT_SLACK_BLOCKS
//     overrides the count).
//   * exactness — every probe through the (evicted, later spilled)
//     reader handle, and its final full materialization, is
//     BIT-IDENTICAL to the baseline materialized from the same frozen
//     image before any eviction.
//   * throughput — ON ingest rate (measured strictly inside update(),
//     like Fig. 2) stays ≥ EVICT_MIN_RATE_RATIO (default 0.9) of OFF.
//
// Env knobs: EVICT_SETS, EVICT_SET_SIZE, EVICT_SHARDS, EVICT_SCALE,
// EVICT_BUDGET_BYTES, EVICT_SPILL_LAG, EVICT_MIN_RATE_RATIO,
// EVICT_SLACK_BLOCKS.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gen/kronecker.hpp"
#include "hier/hier.hpp"

namespace {

using Clock = std::chrono::steady_clock;

std::size_t env_or(const char* name, std::size_t dflt) {
  if (const char* v = std::getenv(name)) return std::strtoull(v, nullptr, 10);
  return dflt;
}

double env_or_d(const char* name, double dflt) {
  if (const char* v = std::getenv(name)) return std::atof(v);
  return dflt;
}

struct RunResult {
  double ingest_rate = 0;          ///< entries / seconds inside update()
  double ingest_seconds = 0;
  std::uint64_t peak_pinned = 0;   ///< governor stats high-water mark
  std::uint64_t end_pinned = 0;    ///< pinned bytes after the final enforce
  std::uint64_t largest_block = 0;
  std::uint64_t held_lag = 0;      ///< epochs the slow reader lagged
  std::uint64_t probe_mismatches = 0;
  bool identical = false;          ///< final full read == baseline image
  hier::GovernorStats stats;
};

RunResult run(const std::vector<gbx::Tuples<double>>& batches,
              std::size_t shards, gbx::Index dim, std::uint64_t budget,
              std::uint64_t spill_lag, std::size_t hold_at) {
  hier::ShardedHier<double> sharded(shards, dim, dim,
                                    hier::CutPolicy::geometric(4, 1u << 13, 8));
  hier::GovernorConfig cfg;
  cfg.budget_bytes = budget;
  cfg.min_evict_lag = 1;
  cfg.spill_lag = spill_lag;
  hier::MemoryGovernor<hier::ShardedHier<double>> gov(sharded, cfg);

  using Handle = hier::MemoryGovernor<hier::ShardedHier<double>>::handle_type;
  Handle held;
  gbx::Matrix<double> ref(1, 1);  // the unevicted baseline image
  std::vector<std::pair<gbx::Index, gbx::Index>> probes;

  RunResult r;
  std::uint64_t entries = 0;
  for (std::size_t k = 0; k < batches.size(); ++k) {
    const auto t0 = Clock::now();
    sharded.update(batches[k]);
    r.ingest_seconds +=
        std::chrono::duration<double>(Clock::now() - t0).count();
    entries += batches[k].size();

    // Reader cadence (untimed): the slow analyst freezes once and then
    // holds; every other epoch is acquired fresh and dropped, which is
    // also what drives enforcement.
    if (k == hold_at) {
      held = gov.acquire();
      auto image = held.pin();
      ref = image.to_matrix();  // materialized BEFORE any eviction
      std::size_t want = 64;
      ref.for_each([&](gbx::Index i, gbx::Index j, double) {
        if (probes.size() < want && (i ^ j) % 7 == 0) probes.emplace_back(i, j);
      });
    } else {
      gov.acquire();
    }

    const auto mem = gov.memory();
    r.largest_block = std::max(r.largest_block, mem.largest_block_bytes);

    // The slow reader re-queries its held (possibly evicted/spilled)
    // handle: results must match the baseline bit-for-bit. One pin per
    // probe round — a spilled pin deserializes the whole image, so
    // per-coordinate handle calls would pay that k times over.
    if (held.valid() && k > hold_at && k % 3 == 0) {
      auto img = held.pin();
      for (const auto& [i, j] : probes) {
        auto got = img.extract_element(i, j);
        auto want_v = ref.extract_element(i, j);
        if (!got || !want_v || *got != *want_v) ++r.probe_mismatches;
      }
    }
  }

  if (held.valid()) {
    auto final_img = held.to_matrix();
    r.identical = gbx::equal(final_img, ref) && held.nvals() == ref.nvals() &&
                  r.probe_mismatches == 0;
    r.held_lag = gov.snapshots().last_epoch() - held.epoch();
  }
  r.end_pinned = gov.memory().pinned_bytes;
  r.stats = gov.stats();
  r.peak_pinned = r.stats.peak_pinned_bytes;
  r.ingest_rate =
      r.ingest_seconds > 0 ? static_cast<double>(entries) / r.ingest_seconds : 0;
  return r;
}

}  // namespace

int main() {
  const std::size_t sets = env_or("EVICT_SETS", 30);
  const std::size_t set_size = env_or("EVICT_SET_SIZE", 50000);
  const std::size_t shards = env_or("EVICT_SHARDS", 4);
  const int scale = static_cast<int>(env_or("EVICT_SCALE", 14));
  const std::size_t hold_at = 6;
  const std::uint64_t spill_lag = env_or("EVICT_SPILL_LAG", 12);
  const double min_ratio = env_or_d("EVICT_MIN_RATE_RATIO", 0.9);
  const gbx::Index dim = gbx::Index{1} << scale;

  benchutil::header(
      "E9 — memory-governed snapshot eviction (hier::MemoryGovernor)",
      "bounded pinned bytes + bit-exact reads for a reader lagging >= 8 epochs");
  benchutil::note("workload: " + std::to_string(sets) + " sets x " +
                  std::to_string(set_size) + " entries, Kronecker scale-" +
                  std::to_string(scale) + ", " + std::to_string(shards) +
                  " shards");

  // Deterministic pre-generated stream: both runs ingest identical data.
  gen::KroneckerParams kp;
  kp.scale = scale;
  kp.seed = 20200316;
  gen::KroneckerGenerator g(kp);
  std::vector<gbx::Tuples<double>> batches(sets);
  for (auto& b : batches) g.batch<double>(set_size, b);

  const auto off = run(batches, shards, dim, hier::GovernorConfig::kNever,
                       hier::GovernorConfig::kNever, hold_at);
  const std::uint64_t budget = static_cast<std::uint64_t>(
      env_or("EVICT_BUDGET_BYTES",
             static_cast<std::size_t>(off.peak_pinned / 4)));
  const auto on = run(batches, shards, dim, budget, spill_lag, hold_at);

  const std::uint64_t slack_blocks = env_or("EVICT_SLACK_BLOCKS", shards);
  const std::uint64_t slack = slack_blocks * on.largest_block;
  const double ratio =
      off.ingest_rate > 0 ? on.ingest_rate / off.ingest_rate : 0.0;

  std::printf("\nrun\tpeak_pinned\tingest_rate\tevictions\tspills\tidentical\n");
  std::printf("off\t%llu\t%s\t%llu\t%llu\t%s\n",
              static_cast<unsigned long long>(off.peak_pinned),
              benchutil::rate(off.ingest_rate).c_str(),
              static_cast<unsigned long long>(off.stats.evictions),
              static_cast<unsigned long long>(off.stats.spills),
              off.identical ? "yes" : "NO");
  std::printf("on\t%llu\t%s\t%llu\t%llu\t%s\n",
              static_cast<unsigned long long>(on.peak_pinned),
              benchutil::rate(on.ingest_rate).c_str(),
              static_cast<unsigned long long>(on.stats.evictions),
              static_cast<unsigned long long>(on.stats.spills),
              on.identical ? "yes" : "NO");
  std::printf("\nbudget B = %llu bytes (off-peak/4 unless EVICT_BUDGET_BYTES)"
              "\nslack    = %llu bytes (%llu blocks x largest %llu)"
              "\nreader lag at end: %llu epochs (need >= 8)"
              "\nthroughput ratio on/off: %.3f (floor %.2f)\n",
              static_cast<unsigned long long>(budget),
              static_cast<unsigned long long>(slack),
              static_cast<unsigned long long>(slack_blocks),
              static_cast<unsigned long long>(on.largest_block),
              static_cast<unsigned long long>(on.held_lag), ratio, min_ratio);

  std::printf("steady pinned after enforcement: off=%llu on=%llu (budget %llu)\n",
              static_cast<unsigned long long>(off.end_pinned),
              static_cast<unsigned long long>(on.end_pinned),
              static_cast<unsigned long long>(budget));

  const bool lag_ok = on.held_lag >= 8;
  // Two-sided memory gate: the transient peak may overshoot by at most
  // one superseded block per shard (the window between two enforcement
  // points), and enforcement must bring pinned bytes back under B.
  const bool bounded =
      on.peak_pinned <= budget + slack && on.end_pinned <= budget;
  const bool exact = on.identical && off.identical;
  const bool governed = on.stats.evictions >= 1 && on.stats.spills >= 1;
  const bool fast = ratio >= min_ratio;
  const bool pass = lag_ok && bounded && exact && governed && fast;

  if (!bounded)
    std::printf("FAIL: pinned peak %llu exceeds budget %llu + slack %llu\n",
                static_cast<unsigned long long>(on.peak_pinned),
                static_cast<unsigned long long>(budget),
                static_cast<unsigned long long>(slack));
  if (!exact) std::printf("FAIL: evicted-reader reads not bit-identical\n");
  if (!governed) std::printf("FAIL: governor performed no eviction/spill\n");
  if (!fast)
    std::printf("FAIL: governed ingest rate ratio %.3f below %.2f\n", ratio,
                min_ratio);
  if (!lag_ok)
    std::printf("FAIL: reader lag %llu < 8 epochs (workload too small)\n",
                static_cast<unsigned long long>(on.held_lag));

  std::string json =
      "{\"bench\":\"eviction\",\"sets\":" + std::to_string(sets) +
      ",\"set_size\":" + std::to_string(set_size) +
      ",\"shards\":" + std::to_string(shards) +
      ",\"budget_bytes\":" + std::to_string(budget) +
      ",\"off_peak_pinned\":" + std::to_string(off.peak_pinned) +
      ",\"on_peak_pinned\":" + std::to_string(on.peak_pinned) +
      ",\"off_end_pinned\":" + std::to_string(off.end_pinned) +
      ",\"on_end_pinned\":" + std::to_string(on.end_pinned) +
      ",\"slack_bytes\":" + std::to_string(slack) +
      ",\"off_ingest_rate\":" + std::to_string(off.ingest_rate) +
      ",\"on_ingest_rate\":" + std::to_string(on.ingest_rate) +
      ",\"rate_ratio\":" + std::to_string(ratio) +
      ",\"evictions\":" + std::to_string(on.stats.evictions) +
      ",\"part_evictions\":" + std::to_string(on.stats.part_evictions) +
      ",\"spills\":" + std::to_string(on.stats.spills) +
      ",\"rehydrations\":" + std::to_string(on.stats.rehydrations) +
      ",\"held_lag\":" + std::to_string(on.held_lag) +
      ",\"identical\":" + (exact ? "true" : "false") +
      ",\"pass\":" + (pass ? "true" : "false") + "}";
  std::printf("BENCH_JSON %s\n", json.c_str());
  return pass ? 0 : 1;
}
