// Ablation A7 — workload sensitivity.
//
// Power-law streams flatter deduplicating ingest (heavy vertices repeat);
// uniform streams are the adversarial case (maximal coordinate entropy,
// near-zero duplication). This bench runs the hierarchy and the direct
// path under power-law, Kronecker and uniform workloads to show the
// cascade's advantage is not a skew artifact.
#include <omp.h>

#include <cstdio>

#include "bench_util.hpp"
#include "gen/gen.hpp"
#include "hier/hier.hpp"

namespace {

constexpr std::size_t kSets = 20;
constexpr std::size_t kSetSize = 100000;

template <class Gen>
std::pair<double, double> run_both(Gen& g) {
  // Pre-generate so both paths see identical batches.
  std::vector<gbx::Tuples<double>> batches;
  batches.reserve(kSets);
  for (std::size_t s = 0; s < kSets; ++s)
    batches.push_back(g.template batch<double>(kSetSize));

  hier::HierMatrix<double> h(gbx::kIPv4Dim, gbx::kIPv4Dim,
                             hier::CutPolicy::geometric(4, 1u << 13, 8));
  double t0 = omp_get_wtime();
  for (const auto& b : batches) h.update(b);
  const double hier_rate =
      static_cast<double>(kSets * kSetSize) / (omp_get_wtime() - t0);

  gbx::Matrix<double> m(gbx::kIPv4Dim, gbx::kIPv4Dim);
  t0 = omp_get_wtime();
  for (const auto& b : batches) {
    m.append(b);
    m.materialize();
  }
  const double direct_rate =
      static_cast<double>(kSets * kSetSize) / (omp_get_wtime() - t0);
  return {hier_rate, direct_rate};
}

}  // namespace

int main() {
  omp_set_num_threads(1);  // per-process model
  benchutil::header(
      "A7 — workload sensitivity",
      "2M-entry streams (20 x 100K sets) from three generators; "
      "hierarchical vs direct single-instance update rates");

  std::printf("workload\thier_rate\tdirect_rate\tspeedup\n");
  {
    gen::PowerLawParams pp;
    pp.scale = 17;
    pp.seed = 5;
    gen::PowerLawGenerator g(pp);
    auto [h, d] = run_both(g);
    std::printf("power-law(a=1.3)\t%s\t%s\t%.2fx\n", benchutil::rate(h).c_str(),
                benchutil::rate(d).c_str(), h / d);
  }
  {
    gen::KroneckerParams kp;
    kp.scale = 17;
    kp.seed = 5;
    gen::KroneckerGenerator g(kp);
    auto [h, d] = run_both(g);
    std::printf("kronecker(g500)\t%s\t%s\t%.2fx\n", benchutil::rate(h).c_str(),
                benchutil::rate(d).c_str(), h / d);
  }
  {
    gen::UniformParams up;
    up.seed = 5;
    gen::UniformGenerator g(up);
    auto [h, d] = run_both(g);
    std::printf("uniform\t%s\t%s\t%.2fx\n", benchutil::rate(h).c_str(),
                benchutil::rate(d).c_str(), h / d);
  }
  benchutil::note(
      "expected shape: the hierarchy wins on every workload; the margin "
      "is largest for uniform streams, where the direct path re-merges a "
      "fast-growing structure every set while the cascade still batches.");
  return 0;
}
